//! Lock-light serving metrics: counters, a batch-size histogram, queue
//! depth, per-stage duration histograms, and request latency quantiles
//! over a fixed ring buffer.
//!
//! Two read formats: [`Metrics::to_prometheus`] renders the Prometheus
//! text exposition served at `GET /metrics`; [`Metrics::to_json`] keeps
//! the key/value snapshot (served at `GET /metrics.json`) that tests and
//! ops scripts consume.
//!
//! Request-scoped tracing: every `POST /predict` gets a `trace_id` that
//! rides its [`crate::batcher::PredictJob`] through queue wait, batch
//! assembly, compute, and serialisation. Completed requests land in a
//! bounded ring ([`REQUEST_RING`]) with their per-stage breakdown
//! ([`RequestTrace`]), the slowest request seen per latency bucket is
//! retained as that bucket's exemplar (OpenMetrics `# {trace_id="…"}`
//! annotations on `/metrics`), and `GET /debug/requests` dumps the top-K
//! tail requests from the ring. DESIGN.md Appendix I covers the retention
//! policy: exemplars are slowest-wins per bucket and never expire until a
//! slower request claims the bucket; the ring overwrites oldest-first.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::json::Json;

/// Batch-size histogram bucket upper bounds (inclusive); the last bucket is
/// open-ended.
pub const BATCH_BUCKETS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Duration-histogram bucket upper bounds in microseconds (inclusive); the
/// last bucket is open-ended. Spans 50 µs to 1 s, which covers everything
/// from queue hops on an idle server to a full forward pass on a big grid.
pub const DURATION_BUCKETS_US: [u64; 9] =
    [50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000];

/// How many recent request latencies the quantile ring retains.
pub const LATENCY_RING: usize = 1024;

/// The serving pipeline stages we time individually. The order here is the
/// order a request experiences them.
pub const STAGES: [&str; 4] = ["queue_wait", "batch_assembly", "compute", "serialize"];

/// How many completed request traces the debug ring retains.
pub const REQUEST_RING: usize = 256;

/// One completed request's stage breakdown, keyed by its trace id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTrace {
    /// Request-scoped id, also stamped on histogram exemplars.
    pub trace_id: u64,
    /// End-to-end latency, microseconds.
    pub total_us: u64,
    /// Time spent queued before a worker drained the job.
    pub queue_wait_us: u64,
    /// Time the draining worker spent assembling the batch.
    pub batch_assembly_us: u64,
    /// Time the batched forward pass took.
    pub compute_us: u64,
    /// Time spent serialising the response body.
    pub serialize_us: u64,
    /// How many requests shared the forward pass.
    pub batch_size: usize,
}

/// The slowest request seen in one latency bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The request's trace id.
    pub trace_id: u64,
    /// Its end-to-end latency, microseconds.
    pub latency_us: u64,
}

/// Bucket index into [`DURATION_BUCKETS_US`] (+1 for the open bucket).
fn bucket_index(us: u64) -> usize {
    DURATION_BUCKETS_US
        .iter()
        .position(|&b| us <= b)
        .unwrap_or(DURATION_BUCKETS_US.len())
}

/// A fixed-bucket duration histogram with atomic cells: Prometheus-style
/// cumulative rendering, lock-free recording.
#[derive(Debug, Default)]
pub struct DurationHist {
    buckets: [AtomicU64; DURATION_BUCKETS_US.len() + 1],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl DurationHist {
    /// Records one observation.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = DURATION_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(DURATION_BUCKETS_US.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Appends Prometheus exposition lines for this histogram. `labels` is
    /// either empty or a `key="value"` fragment without braces.
    fn render_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        let mut cumulative = 0u64;
        for (i, cell) in self.buckets.iter().enumerate() {
            cumulative += cell.load(Ordering::Relaxed);
            let le = DURATION_BUCKETS_US
                .get(i)
                .map(|b| b.to_string())
                .unwrap_or_else(|| "+Inf".to_string());
            let sep = if labels.is_empty() { "" } else { "," };
            let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}");
        }
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(out, "{name}_sum{braces} {}", self.sum_us());
        let _ = writeln!(out, "{name}_count{braces} {}", self.count());
    }

    /// Like [`DurationHist::render_prometheus`] (label-free form) but
    /// annotates each bucket that has an exemplar with the OpenMetrics
    /// exemplar syntax: `name_bucket{le="…"} N # {trace_id="…"} latency`.
    fn render_prometheus_exemplars(
        &self,
        out: &mut String,
        name: &str,
        exemplars: &[Option<Exemplar>],
    ) {
        let mut cumulative = 0u64;
        for (i, cell) in self.buckets.iter().enumerate() {
            cumulative += cell.load(Ordering::Relaxed);
            let le = DURATION_BUCKETS_US
                .get(i)
                .map(|b| b.to_string())
                .unwrap_or_else(|| "+Inf".to_string());
            match exemplars.get(i).copied().flatten() {
                Some(ex) => {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{le}\"}} {cumulative} # {{trace_id=\"{}\"}} {}",
                        ex.trace_id, ex.latency_us
                    );
                }
                None => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{name}_sum {}", self.sum_us());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

/// Shared serving metrics. All hot-path updates are atomic; only the latency
/// ring takes a (short) lock.
#[derive(Debug)]
pub struct Metrics {
    /// Requests that reached `POST /predict` (accepted or rejected).
    pub requests_total: AtomicU64,
    /// Requests answered with a prediction.
    pub responses_ok: AtomicU64,
    /// Requests rejected with 503 because the queue was full.
    pub rejected_total: AtomicU64,
    /// Requests rejected with 4xx (malformed body, unknown model, bad shape).
    pub client_errors: AtomicU64,
    /// Current number of requests sitting in the batching queue.
    pub queue_depth: AtomicUsize,
    /// Requests currently inside `POST /predict` handling (parsing, queue
    /// wait, compute, serialisation). Balanced on every exit path.
    pub in_flight: AtomicUsize,
    /// Completed model batches, by size bucket (see [`BATCH_BUCKETS`]).
    batch_hist: [AtomicU64; BATCH_BUCKETS.len() + 1],
    /// Sum of all batch sizes (the `_sum` of the batch-size histogram).
    batch_size_sum: AtomicU64,
    /// Total batches run (sum of the histogram, kept for cheap reads).
    pub batches_total: AtomicU64,
    /// Time jobs spent queued before a worker drained them.
    pub stage_queue_wait: DurationHist,
    /// Time a worker spent assembling one batch after its first job.
    pub stage_batch_assembly: DurationHist,
    /// Time one batched forward pass took (including fault retries).
    pub stage_compute: DurationHist,
    /// Time spent serialising a prediction response body.
    pub stage_serialize: DurationHist,
    /// End-to-end request latency as a fixed-bucket histogram (the quantile
    /// ring below gives p50/p99 over a sliding window; this gives the
    /// cumulative distribution Prometheus wants).
    pub request_latency: DurationHist,
    /// Model hot-swaps performed since startup.
    pub swaps_total: AtomicU64,
    /// Transient worker-side prediction faults that were retried (injected
    /// or real); each increment is one failed attempt, not one request.
    pub worker_faults_total: AtomicU64,
    /// `POST /predict` submissions re-tried after a full-queue rejection.
    pub submit_retries_total: AtomicU64,
    /// Jobs dropped unanswered because their deadline passed before a
    /// worker could run them (the client got `504` from its own timer).
    pub deadline_expired_total: AtomicU64,
    /// Whether the server is in degraded mode: a hot-swap failed or a
    /// fault schedule is active, and requests are served by the last
    /// known-good model. Mirrored in `/healthz` and `/metrics`.
    pub degraded: AtomicBool,
    /// Hot-swaps performed by the live adaptation loop (a subset of
    /// `swaps_total`): candidate fine-tuned on drift and won shadow eval.
    pub live_swaps_total: AtomicU64,
    /// Live adaptation attempts rolled back (fine-tune diverged/failed or
    /// the swap itself failed); the incumbent kept serving.
    pub live_rollbacks_total: AtomicU64,
    /// Live candidates refused after shadow evaluation (trained fine but
    /// did not beat the incumbent).
    pub live_refusals_total: AtomicU64,
    /// Latest drift score from the live detector, stored as `f64` bits so
    /// the gauge update stays a single atomic write.
    drift_score_bits: AtomicU64,
    /// Latest drift-detector state index (0 = stable … 4 = rolled-back).
    drift_state: AtomicU64,
    /// Recent end-to-end request latencies, microseconds.
    latencies: Mutex<Ring>,
    /// Monotonic trace-id source for `POST /predict`.
    trace_counter: AtomicU64,
    /// Slowest request seen per latency bucket (the bucket's exemplar).
    latency_exemplars: Mutex<[Option<Exemplar>; DURATION_BUCKETS_US.len() + 1]>,
    /// Recent completed requests with their stage breakdowns, oldest-first
    /// overwrite once full.
    requests: Mutex<RequestRing>,
}

#[derive(Debug)]
struct RequestRing {
    traces: Vec<RequestTrace>,
    next: usize,
}

#[derive(Debug)]
struct Ring {
    samples: Vec<u64>,
    next: usize,
    filled: bool,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics {
            requests_total: AtomicU64::new(0),
            responses_ok: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            batch_hist: Default::default(),
            batch_size_sum: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            stage_queue_wait: DurationHist::default(),
            stage_batch_assembly: DurationHist::default(),
            stage_compute: DurationHist::default(),
            stage_serialize: DurationHist::default(),
            request_latency: DurationHist::default(),
            swaps_total: AtomicU64::new(0),
            worker_faults_total: AtomicU64::new(0),
            submit_retries_total: AtomicU64::new(0),
            deadline_expired_total: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            live_swaps_total: AtomicU64::new(0),
            live_rollbacks_total: AtomicU64::new(0),
            live_refusals_total: AtomicU64::new(0),
            drift_score_bits: AtomicU64::new(0),
            drift_state: AtomicU64::new(0),
            latencies: Mutex::new(Ring {
                samples: Vec::with_capacity(LATENCY_RING),
                next: 0,
                filled: false,
            }),
            trace_counter: AtomicU64::new(0),
            latency_exemplars: Mutex::new([None; DURATION_BUCKETS_US.len() + 1]),
            requests: Mutex::new(RequestRing {
                traces: Vec::with_capacity(REQUEST_RING),
                next: 0,
            }),
        }
    }

    /// Issues the next request trace id (1-based so 0 can mean "untraced").
    pub fn next_trace_id(&self) -> u64 {
        self.trace_counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records one completed request: its end-to-end latency (histogram +
    /// quantile ring), its stage breakdown (debug ring), and — if it is the
    /// slowest its latency bucket has seen — the bucket's exemplar.
    pub fn record_request(&self, trace: RequestTrace) {
        self.record_latency(Duration::from_micros(trace.total_us));
        {
            let mut exemplars = self
                .latency_exemplars
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let slot = &mut exemplars[bucket_index(trace.total_us)];
            if slot.is_none_or(|ex| trace.total_us > ex.latency_us) {
                *slot = Some(Exemplar {
                    trace_id: trace.trace_id,
                    latency_us: trace.total_us,
                });
            }
        }
        let mut ring = self.requests.lock().unwrap_or_else(|e| e.into_inner());
        if ring.traces.len() < REQUEST_RING {
            ring.traces.push(trace);
        } else {
            let at = ring.next;
            ring.traces[at] = trace;
        }
        ring.next = (ring.next + 1) % REQUEST_RING;
    }

    /// The `k` slowest requests still in the debug ring, slowest first
    /// (ties broken by trace id for deterministic output).
    pub fn top_requests(&self, k: usize) -> Vec<RequestTrace> {
        let ring = self.requests.lock().unwrap_or_else(|e| e.into_inner());
        let mut traces = ring.traces.clone();
        traces.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.trace_id.cmp(&b.trace_id)));
        traces.truncate(k);
        traces
    }

    /// Snapshot of the per-bucket latency exemplars (index-aligned with
    /// [`DURATION_BUCKETS_US`] plus the open bucket).
    pub fn latency_exemplars(&self) -> Vec<Option<Exemplar>> {
        self.latency_exemplars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .to_vec()
    }

    /// Records one completed model batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        let bucket = BATCH_BUCKETS
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(BATCH_BUCKETS.len());
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
        self.batch_size_sum.fetch_add(size as u64, Ordering::Relaxed);
        self.batches_total.fetch_add(1, Ordering::Relaxed);
    }

    /// The duration histogram for a named pipeline stage (see [`STAGES`]).
    pub fn stage(&self, name: &str) -> Option<&DurationHist> {
        match name {
            "queue_wait" => Some(&self.stage_queue_wait),
            "batch_assembly" => Some(&self.stage_batch_assembly),
            "compute" => Some(&self.stage_compute),
            "serialize" => Some(&self.stage_serialize),
            _ => None,
        }
    }

    /// Updates the live-loop drift gauges in one pass: the latest drift
    /// score and the detector state index (0 = stable … 4 = rolled-back).
    pub fn set_drift(&self, score: f64, state: u8) {
        self.drift_score_bits
            .store(score.to_bits(), Ordering::Relaxed);
        self.drift_state.store(u64::from(state), Ordering::Relaxed);
    }

    /// The latest drift score reported through [`Metrics::set_drift`].
    pub fn drift_score(&self) -> f64 {
        f64::from_bits(self.drift_score_bits.load(Ordering::Relaxed))
    }

    /// The latest drift-state index reported through [`Metrics::set_drift`].
    pub fn drift_state(&self) -> u64 {
        self.drift_state.load(Ordering::Relaxed)
    }

    /// Records one request's end-to-end latency.
    pub fn record_latency(&self, latency: Duration) {
        self.request_latency.observe(latency);
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let mut ring = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if ring.samples.len() < LATENCY_RING {
            ring.samples.push(us);
        } else {
            let at = ring.next;
            ring.samples[at] = us;
            ring.filled = true;
        }
        ring.next = (ring.next + 1) % LATENCY_RING;
    }

    /// Latency quantile in microseconds over the retained window (`q` in
    /// `[0, 1]`), or `None` before the first completed request.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        let ring = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if ring.samples.is_empty() {
            return None;
        }
        let mut sorted = ring.samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx])
    }

    /// The full metrics document served at `GET /metrics`.
    pub fn to_json(&self) -> Json {
        let hist: Vec<Json> = self
            .batch_hist
            .iter()
            .enumerate()
            .map(|(i, count)| {
                let le = BATCH_BUCKETS
                    .get(i)
                    .map(|b| Json::Num(*b as f64))
                    .unwrap_or(Json::Str("inf".into()));
                Json::obj([
                    ("le", le),
                    ("count", Json::Num(count.load(Ordering::Relaxed) as f64)),
                ])
            })
            .collect();
        let lat = |q: f64| {
            self.latency_quantile(q)
                .map(|us| Json::Num(us as f64))
                .unwrap_or(Json::Null)
        };
        Json::obj([
            (
                "requests_total",
                Json::Num(self.requests_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "responses_ok",
                Json::Num(self.responses_ok.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_total",
                Json::Num(self.rejected_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "client_errors",
                Json::Num(self.client_errors.load(Ordering::Relaxed) as f64),
            ),
            (
                "queue_depth",
                Json::Num(self.queue_depth.load(Ordering::Relaxed) as f64),
            ),
            (
                "in_flight",
                Json::Num(self.in_flight.load(Ordering::Relaxed) as f64),
            ),
            ("batch_size_histogram", Json::Arr(hist)),
            (
                "batches_total",
                Json::Num(self.batches_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "swaps_total",
                Json::Num(self.swaps_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "worker_faults_total",
                Json::Num(self.worker_faults_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "submit_retries_total",
                Json::Num(self.submit_retries_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "deadline_expired_total",
                Json::Num(self.deadline_expired_total.load(Ordering::Relaxed) as f64),
            ),
            ("degraded", Json::Bool(self.degraded.load(Ordering::Relaxed))),
            (
                "live_swaps_total",
                Json::Num(self.live_swaps_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "live_rollbacks_total",
                Json::Num(self.live_rollbacks_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "live_refusals_total",
                Json::Num(self.live_refusals_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "drift_score",
                // An injected-fault score can be infinite; JSON has no
                // literal for that, so non-finite renders as null.
                if self.drift_score().is_finite() {
                    Json::Num(self.drift_score())
                } else {
                    Json::Null
                },
            ),
            ("drift_state", Json::Num(self.drift_state() as f64)),
            ("latency_p50_us", lat(0.50)),
            ("latency_p99_us", lat(0.99)),
            // Kept in lockstep with the exemplar annotations on /metrics:
            // one entry per bucket that has seen a request, same trace ids.
            (
                "latency_exemplars",
                Json::Arr(
                    self.latency_exemplars()
                        .iter()
                        .enumerate()
                        .filter_map(|(i, ex)| {
                            ex.map(|ex| {
                                let le = DURATION_BUCKETS_US
                                    .get(i)
                                    .map(|b| Json::Num(*b as f64))
                                    .unwrap_or(Json::Str("inf".into()));
                                Json::obj([
                                    ("le", le),
                                    ("trace_id", Json::Num(ex.trace_id as f64)),
                                    ("latency_us", Json::Num(ex.latency_us as f64)),
                                ])
                            })
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the Prometheus text exposition format (version 0.0.4) served
    /// at `GET /metrics`: every counter and gauge with `# HELP`/`# TYPE`
    /// headers, the batch-size histogram, the end-to-end latency histogram,
    /// and one `bikecap_stage_duration_us` histogram per pipeline stage.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = writeln!(out, "{name} {}", v as i64);
            } else {
                let _ = writeln!(out, "{name} {v}");
            }
        };
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);

        counter(
            &mut out,
            "bikecap_requests_total",
            "Requests that reached POST /predict.",
            load(&self.requests_total),
        );
        counter(
            &mut out,
            "bikecap_responses_ok_total",
            "Requests answered with a prediction.",
            load(&self.responses_ok),
        );
        counter(
            &mut out,
            "bikecap_rejected_total",
            "Requests shed with 503 because the queue was full.",
            load(&self.rejected_total),
        );
        counter(
            &mut out,
            "bikecap_client_errors_total",
            "Requests rejected with a 4xx status.",
            load(&self.client_errors),
        );
        counter(
            &mut out,
            "bikecap_batches_total",
            "Completed model batches.",
            load(&self.batches_total),
        );
        counter(
            &mut out,
            "bikecap_swaps_total",
            "Model hot-swaps performed since startup.",
            load(&self.swaps_total),
        );
        counter(
            &mut out,
            "bikecap_worker_faults_total",
            "Transient worker-side prediction faults that were retried.",
            load(&self.worker_faults_total),
        );
        counter(
            &mut out,
            "bikecap_submit_retries_total",
            "Submissions retried after a full-queue rejection.",
            load(&self.submit_retries_total),
        );
        counter(
            &mut out,
            "bikecap_deadline_expired_total",
            "Jobs dropped because their deadline passed before compute.",
            load(&self.deadline_expired_total),
        );
        counter(
            &mut out,
            "bikecap_live_swaps_total",
            "Hot-swaps performed by the live adaptation loop.",
            load(&self.live_swaps_total),
        );
        counter(
            &mut out,
            "bikecap_live_rollbacks_total",
            "Live adaptation attempts rolled back to the incumbent.",
            load(&self.live_rollbacks_total),
        );
        counter(
            &mut out,
            "bikecap_live_refusals_total",
            "Live candidates refused after losing shadow evaluation.",
            load(&self.live_refusals_total),
        );

        gauge(
            &mut out,
            "bikecap_queue_depth",
            "Requests currently waiting in the batching queue.",
            self.queue_depth.load(Ordering::Relaxed) as f64,
        );
        gauge(
            &mut out,
            "bikecap_in_flight",
            "Requests currently inside POST /predict handling.",
            self.in_flight.load(Ordering::Relaxed) as f64,
        );
        gauge(
            &mut out,
            "bikecap_drift_score",
            "Latest drift score from the live adaptation detector.",
            {
                // Prometheus accepts +Inf but our exposition checker does
                // not need it; clamp non-finite scores to a sentinel.
                let s = self.drift_score();
                if s.is_finite() {
                    s
                } else {
                    f64::MAX
                }
            },
        );
        gauge(
            &mut out,
            "bikecap_drift_state",
            "Live drift-detector state (0=stable 1=suspect 2=drifted 3=retraining 4=rolled-back).",
            self.drift_state() as f64,
        );
        gauge(
            &mut out,
            "bikecap_degraded",
            "1 when serving from a stale model or with faults armed.",
            if self.degraded.load(Ordering::Relaxed) {
                1.0
            } else {
                0.0
            },
        );

        let _ = writeln!(
            out,
            "# HELP bikecap_batch_size Requests fused per completed model batch."
        );
        let _ = writeln!(out, "# TYPE bikecap_batch_size histogram");
        let mut cumulative = 0u64;
        for (i, cell) in self.batch_hist.iter().enumerate() {
            cumulative += cell.load(Ordering::Relaxed);
            let le = BATCH_BUCKETS
                .get(i)
                .map(|b| b.to_string())
                .unwrap_or_else(|| "+Inf".to_string());
            let _ = writeln!(out, "bikecap_batch_size_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(
            out,
            "bikecap_batch_size_sum {}",
            self.batch_size_sum.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "bikecap_batch_size_count {}", load(&self.batches_total));

        let _ = writeln!(
            out,
            "# HELP bikecap_request_latency_us End-to-end POST /predict latency, microseconds."
        );
        let _ = writeln!(out, "# TYPE bikecap_request_latency_us histogram");
        let exemplars = self.latency_exemplars();
        self.request_latency.render_prometheus_exemplars(
            &mut out,
            "bikecap_request_latency_us",
            &exemplars,
        );

        let _ = writeln!(
            out,
            "# HELP bikecap_stage_duration_us Per-stage serving pipeline time, microseconds."
        );
        let _ = writeln!(out, "# TYPE bikecap_stage_duration_us histogram");
        for stage in STAGES {
            if let Some(hist) = self.stage(stage) {
                hist.render_prometheus(
                    &mut out,
                    "bikecap_stage_duration_us",
                    &format!("stage=\"{stage}\""),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_histogram_buckets() {
        let m = Metrics::new();
        for size in [1, 2, 3, 4, 9, 100] {
            m.record_batch(size);
        }
        let doc = m.to_json();
        let hist = doc.get("batch_size_histogram").unwrap().as_arr().unwrap();
        let counts: Vec<usize> = hist
            .iter()
            .map(|b| b.get("count").unwrap().as_usize().unwrap())
            .collect();
        // le=1:1, le=2:1, le=4:2 (3 and 4), le=8:0, le=16:1 (9), le=32:0, inf:1
        assert_eq!(counts, vec![1, 1, 2, 0, 1, 0, 1]);
        assert_eq!(doc.get("batches_total").unwrap().as_usize(), Some(6));
    }

    #[test]
    fn quantiles_over_ring() {
        let m = Metrics::new();
        assert_eq!(m.latency_quantile(0.5), None);
        for i in 1..=100u64 {
            m.record_latency(Duration::from_micros(i));
        }
        assert_eq!(m.latency_quantile(0.0), Some(1));
        assert_eq!(m.latency_quantile(1.0), Some(100));
        let p50 = m.latency_quantile(0.5).unwrap();
        assert!((49..=52).contains(&p50), "p50 was {p50}");
    }

    #[test]
    fn ring_evicts_old_samples() {
        let m = Metrics::new();
        for _ in 0..LATENCY_RING {
            m.record_latency(Duration::from_micros(1_000_000));
        }
        for _ in 0..LATENCY_RING {
            m.record_latency(Duration::from_micros(5));
        }
        // All old samples overwritten: the max is now 5.
        assert_eq!(m.latency_quantile(1.0), Some(5));
    }

    /// A hand-rolled check of the exposition format: every sample line is
    /// `name{labels} value` with an optional OpenMetrics exemplar suffix
    /// (`… # {trace_id="…"} value`), every sample's family has a `# TYPE`
    /// line first, and histogram buckets are cumulative and end at `+Inf`.
    /// Returns the samples plus the exemplars keyed by their sample line.
    #[allow(clippy::type_complexity)]
    fn parse_prometheus_full(
        text: &str,
    ) -> (
        std::collections::BTreeMap<String, f64>,
        std::collections::BTreeMap<String, (u64, f64)>,
    ) {
        let mut typed: std::collections::BTreeMap<String, String> = Default::default();
        let mut samples = std::collections::BTreeMap::new();
        let mut exemplars = std::collections::BTreeMap::new();
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("TYPE needs a name").to_string();
                let kind = it.next().expect("TYPE needs a kind").to_string();
                assert!(
                    matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                    "unknown type {kind}"
                );
                typed.insert(name, kind);
                continue;
            }
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP "), "only HELP/TYPE comments: {line}");
                continue;
            }
            // Split off an exemplar annotation first: only bucket lines may
            // carry one, and it must parse as `# {trace_id="N"} value`.
            let (sample_part, exemplar_part) = match line.split_once(" # ") {
                Some((sample, ex)) => (sample, Some(ex)),
                None => (line, None),
            };
            let (key, value) = sample_part.rsplit_once(' ').expect("sample needs a value");
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("bad value in {line}"));
            if let Some(ex) = exemplar_part {
                assert!(
                    key.contains("_bucket{"),
                    "exemplars only belong on bucket lines: {line}"
                );
                let rest = ex
                    .strip_prefix("{trace_id=\"")
                    .unwrap_or_else(|| panic!("bad exemplar labels in {line}"));
                let (trace_id, rest) = rest
                    .split_once("\"}")
                    .unwrap_or_else(|| panic!("unterminated exemplar labels in {line}"));
                let trace_id: u64 = trace_id
                    .parse()
                    .unwrap_or_else(|_| panic!("bad exemplar trace id in {line}"));
                let ex_value: f64 = rest
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad exemplar value in {line}"));
                exemplars.insert(key.to_string(), (trace_id, ex_value));
            }
            let name = key.split('{').next().unwrap();
            let family = name
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                typed.contains_key(name) || typed.contains_key(family),
                "sample {name} has no # TYPE"
            );
            samples.insert(key.to_string(), value);
        }
        (samples, exemplars)
    }

    fn parse_prometheus(text: &str) -> std::collections::BTreeMap<String, f64> {
        parse_prometheus_full(text).0
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.record_batch(2);
        m.record_batch(5);
        m.record_latency(Duration::from_micros(300));
        m.stage_queue_wait.observe(Duration::from_micros(40));
        m.stage_compute.observe(Duration::from_micros(900));
        m.stage_serialize.observe(Duration::from_micros(10));
        m.stage_batch_assembly.observe(Duration::from_micros(70));
        let text = m.to_prometheus();
        let samples = parse_prometheus(&text);

        assert_eq!(samples.get("bikecap_requests_total"), Some(&3.0));
        assert_eq!(samples.get("bikecap_batches_total"), Some(&2.0));
        assert_eq!(samples.get("bikecap_batch_size_sum"), Some(&7.0));
        assert_eq!(samples.get("bikecap_batch_size_count"), Some(&2.0));
        assert_eq!(samples.get("bikecap_queue_depth"), Some(&0.0));
        assert_eq!(samples.get("bikecap_in_flight"), Some(&0.0));

        // Every stage histogram is present with cumulative buckets.
        for stage in STAGES {
            let inf = format!("bikecap_stage_duration_us_bucket{{stage=\"{stage}\",le=\"+Inf\"}}");
            let count = format!("bikecap_stage_duration_us_count{{stage=\"{stage}\"}}");
            assert_eq!(samples.get(&inf), Some(&1.0), "{stage}");
            assert_eq!(samples.get(&count), Some(&1.0), "{stage}");
            let mut prev = 0.0;
            for b in DURATION_BUCKETS_US {
                let key =
                    format!("bikecap_stage_duration_us_bucket{{stage=\"{stage}\",le=\"{b}\"}}");
                let v = *samples.get(&key).unwrap_or_else(|| panic!("missing {key}"));
                assert!(v >= prev, "buckets must be cumulative ({key})");
                prev = v;
            }
        }

        // Latency histogram saw exactly the one recorded request.
        assert_eq!(
            samples.get("bikecap_request_latency_us_bucket{le=\"+Inf\"}"),
            Some(&1.0)
        );
        assert_eq!(samples.get("bikecap_request_latency_us_sum"), Some(&300.0));
    }

    #[test]
    fn duration_hist_buckets_are_inclusive() {
        let h = DurationHist::default();
        h.observe(Duration::from_micros(50)); // lands in le=50
        h.observe(Duration::from_micros(51)); // lands in le=100
        h.observe(Duration::from_secs(10)); // overflows to +Inf
        let mut out = String::new();
        h.render_prometheus(&mut out, "x", "");
        assert!(out.contains("x_bucket{le=\"50\"} 1"), "{out}");
        assert!(out.contains("x_bucket{le=\"100\"} 2"), "{out}");
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("x_count 3"), "{out}");
    }

    fn trace(id: u64, total_us: u64) -> RequestTrace {
        RequestTrace {
            trace_id: id,
            total_us,
            queue_wait_us: total_us / 4,
            batch_assembly_us: total_us / 8,
            compute_us: total_us / 2,
            serialize_us: total_us / 8,
            batch_size: 2,
        }
    }

    #[test]
    fn exemplars_annotate_buckets_and_match_json() {
        let m = Metrics::new();
        // Two requests in the same bucket (slowest wins) plus one outlier.
        m.record_request(trace(1, 300));
        m.record_request(trace(2, 400));
        m.record_request(trace(3, 90_000));
        let text = m.to_prometheus();
        let (samples, exemplars) = parse_prometheus_full(&text);

        // le=500 holds both fast requests; its exemplar is the slower one.
        assert_eq!(
            samples.get("bikecap_request_latency_us_bucket{le=\"500\"}"),
            Some(&2.0)
        );
        assert_eq!(
            exemplars.get("bikecap_request_latency_us_bucket{le=\"500\"}"),
            Some(&(2, 400.0))
        );
        assert_eq!(
            exemplars.get("bikecap_request_latency_us_bucket{le=\"100000\"}"),
            Some(&(3, 90_000.0))
        );
        // Un-hit buckets carry no exemplar.
        assert!(!exemplars
            .keys()
            .any(|k| k.contains("le=\"50\"") && k.contains("request_latency")));

        // /metrics.json reports the same exemplars, same trace ids.
        let doc = m.to_json();
        let json_ex = doc.get("latency_exemplars").unwrap().as_arr().unwrap();
        assert_eq!(json_ex.len(), exemplars.len());
        for ex in json_ex {
            let le = match ex.get("le").unwrap() {
                Json::Num(n) => format!("{n}"),
                _ => "+Inf".to_string(),
            };
            let key = format!("bikecap_request_latency_us_bucket{{le=\"{le}\"}}");
            let (prom_id, prom_us) = exemplars
                .get(&key)
                .unwrap_or_else(|| panic!("json exemplar {key} missing from /metrics"));
            assert_eq!(ex.get("trace_id").and_then(Json::as_usize), Some(*prom_id as usize));
            assert_eq!(ex.get("latency_us").and_then(Json::as_f64), Some(*prom_us));
        }
    }

    #[test]
    fn top_requests_are_sorted_and_bounded() {
        let m = Metrics::new();
        for i in 0..REQUEST_RING + 10 {
            // Latencies rise over time, so the ring's survivors are the
            // newest (and slowest) REQUEST_RING requests.
            m.record_request(trace(i as u64 + 1, (i as u64 + 1) * 10));
        }
        let top = m.top_requests(5);
        assert_eq!(top.len(), 5);
        let slowest = (REQUEST_RING + 10) as u64;
        assert_eq!(top[0].trace_id, slowest);
        assert_eq!(top[0].total_us, slowest * 10);
        assert!(top.windows(2).all(|w| w[0].total_us >= w[1].total_us));
        // The ring is bounded: the oldest 10 requests were overwritten.
        let all = m.top_requests(usize::MAX);
        assert_eq!(all.len(), REQUEST_RING);
        assert!(all.iter().all(|t| t.trace_id > 10));
    }

    #[test]
    fn metrics_json_has_required_fields() {
        let m = Metrics::new();
        let doc = m.to_json();
        for key in [
            "requests_total",
            "queue_depth",
            "batch_size_histogram",
            "latency_p50_us",
            "latency_p99_us",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        assert_eq!(doc.get("latency_p50_us"), Some(&Json::Null));
    }
}
