//! Lock-light serving metrics: counters, a batch-size histogram, queue
//! depth, and request latency quantiles over a fixed ring buffer.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::json::Json;

/// Batch-size histogram bucket upper bounds (inclusive); the last bucket is
/// open-ended.
pub const BATCH_BUCKETS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// How many recent request latencies the quantile ring retains.
pub const LATENCY_RING: usize = 1024;

/// Shared serving metrics. All hot-path updates are atomic; only the latency
/// ring takes a (short) lock.
#[derive(Debug)]
pub struct Metrics {
    /// Requests that reached `POST /predict` (accepted or rejected).
    pub requests_total: AtomicU64,
    /// Requests answered with a prediction.
    pub responses_ok: AtomicU64,
    /// Requests rejected with 503 because the queue was full.
    pub rejected_total: AtomicU64,
    /// Requests rejected with 4xx (malformed body, unknown model, bad shape).
    pub client_errors: AtomicU64,
    /// Current number of requests sitting in the batching queue.
    pub queue_depth: AtomicUsize,
    /// Completed model batches, by size bucket (see [`BATCH_BUCKETS`]).
    batch_hist: [AtomicU64; BATCH_BUCKETS.len() + 1],
    /// Total batches run (sum of the histogram, kept for cheap reads).
    pub batches_total: AtomicU64,
    /// Model hot-swaps performed since startup.
    pub swaps_total: AtomicU64,
    /// Transient worker-side prediction faults that were retried (injected
    /// or real); each increment is one failed attempt, not one request.
    pub worker_faults_total: AtomicU64,
    /// `POST /predict` submissions re-tried after a full-queue rejection.
    pub submit_retries_total: AtomicU64,
    /// Jobs dropped unanswered because their deadline passed before a
    /// worker could run them (the client got `504` from its own timer).
    pub deadline_expired_total: AtomicU64,
    /// Whether the server is in degraded mode: a hot-swap failed or a
    /// fault schedule is active, and requests are served by the last
    /// known-good model. Mirrored in `/healthz` and `/metrics`.
    pub degraded: AtomicBool,
    /// Recent end-to-end request latencies, microseconds.
    latencies: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    samples: Vec<u64>,
    next: usize,
    filled: bool,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Metrics {
            requests_total: AtomicU64::new(0),
            responses_ok: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            batch_hist: Default::default(),
            batches_total: AtomicU64::new(0),
            swaps_total: AtomicU64::new(0),
            worker_faults_total: AtomicU64::new(0),
            submit_retries_total: AtomicU64::new(0),
            deadline_expired_total: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            latencies: Mutex::new(Ring {
                samples: Vec::with_capacity(LATENCY_RING),
                next: 0,
                filled: false,
            }),
        }
    }

    /// Records one completed model batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        let bucket = BATCH_BUCKETS
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(BATCH_BUCKETS.len());
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
        self.batches_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's end-to-end latency.
    pub fn record_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let mut ring = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if ring.samples.len() < LATENCY_RING {
            ring.samples.push(us);
        } else {
            let at = ring.next;
            ring.samples[at] = us;
            ring.filled = true;
        }
        ring.next = (ring.next + 1) % LATENCY_RING;
    }

    /// Latency quantile in microseconds over the retained window (`q` in
    /// `[0, 1]`), or `None` before the first completed request.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        let ring = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if ring.samples.is_empty() {
            return None;
        }
        let mut sorted = ring.samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx])
    }

    /// The full metrics document served at `GET /metrics`.
    pub fn to_json(&self) -> Json {
        let hist: Vec<Json> = self
            .batch_hist
            .iter()
            .enumerate()
            .map(|(i, count)| {
                let le = BATCH_BUCKETS
                    .get(i)
                    .map(|b| Json::Num(*b as f64))
                    .unwrap_or(Json::Str("inf".into()));
                Json::obj([
                    ("le", le),
                    ("count", Json::Num(count.load(Ordering::Relaxed) as f64)),
                ])
            })
            .collect();
        let lat = |q: f64| {
            self.latency_quantile(q)
                .map(|us| Json::Num(us as f64))
                .unwrap_or(Json::Null)
        };
        Json::obj([
            (
                "requests_total",
                Json::Num(self.requests_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "responses_ok",
                Json::Num(self.responses_ok.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_total",
                Json::Num(self.rejected_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "client_errors",
                Json::Num(self.client_errors.load(Ordering::Relaxed) as f64),
            ),
            (
                "queue_depth",
                Json::Num(self.queue_depth.load(Ordering::Relaxed) as f64),
            ),
            ("batch_size_histogram", Json::Arr(hist)),
            (
                "batches_total",
                Json::Num(self.batches_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "swaps_total",
                Json::Num(self.swaps_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "worker_faults_total",
                Json::Num(self.worker_faults_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "submit_retries_total",
                Json::Num(self.submit_retries_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "deadline_expired_total",
                Json::Num(self.deadline_expired_total.load(Ordering::Relaxed) as f64),
            ),
            ("degraded", Json::Bool(self.degraded.load(Ordering::Relaxed))),
            ("latency_p50_us", lat(0.50)),
            ("latency_p99_us", lat(0.99)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_histogram_buckets() {
        let m = Metrics::new();
        for size in [1, 2, 3, 4, 9, 100] {
            m.record_batch(size);
        }
        let doc = m.to_json();
        let hist = doc.get("batch_size_histogram").unwrap().as_arr().unwrap();
        let counts: Vec<usize> = hist
            .iter()
            .map(|b| b.get("count").unwrap().as_usize().unwrap())
            .collect();
        // le=1:1, le=2:1, le=4:2 (3 and 4), le=8:0, le=16:1 (9), le=32:0, inf:1
        assert_eq!(counts, vec![1, 1, 2, 0, 1, 0, 1]);
        assert_eq!(doc.get("batches_total").unwrap().as_usize(), Some(6));
    }

    #[test]
    fn quantiles_over_ring() {
        let m = Metrics::new();
        assert_eq!(m.latency_quantile(0.5), None);
        for i in 1..=100u64 {
            m.record_latency(Duration::from_micros(i));
        }
        assert_eq!(m.latency_quantile(0.0), Some(1));
        assert_eq!(m.latency_quantile(1.0), Some(100));
        let p50 = m.latency_quantile(0.5).unwrap();
        assert!((49..=52).contains(&p50), "p50 was {p50}");
    }

    #[test]
    fn ring_evicts_old_samples() {
        let m = Metrics::new();
        for _ in 0..LATENCY_RING {
            m.record_latency(Duration::from_micros(1_000_000));
        }
        for _ in 0..LATENCY_RING {
            m.record_latency(Duration::from_micros(5));
        }
        // All old samples overwritten: the max is now 5.
        assert_eq!(m.latency_quantile(1.0), Some(5));
    }

    #[test]
    fn metrics_json_has_required_fields() {
        let m = Metrics::new();
        let doc = m.to_json();
        for key in [
            "requests_total",
            "queue_depth",
            "batch_size_histogram",
            "latency_p50_us",
            "latency_p99_us",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        assert_eq!(doc.get("latency_p50_us"), Some(&Json::Null));
    }
}
