//! Chrome `trace_event` export: converts a slice of [`Event`]s into the
//! JSON object format understood by `chrome://tracing` and Perfetto
//! (<https://ui.perfetto.dev>): `Begin`/`End` become `"B"`/`"E"` duration
//! events keyed by (pid, tid, ts), `Value` becomes a `"C"` counter event so
//! losses and entropies render as tracks alongside the span flame graph.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::{escape_json_into, format_f64, Event, Kind};

/// Renders `events` as a complete Chrome trace JSON document.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        push_trace_event(&mut out, event);
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace`] output to `path`.
///
/// # Errors
///
/// Any error from creating or writing the file.
pub fn write_chrome_trace(path: &Path, events: &[Event]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut out = BufWriter::new(file);
    out.write_all(chrome_trace(events).as_bytes())?;
    out.flush()
}

fn push_trace_event(out: &mut String, event: &Event) {
    let ph = match event.kind {
        Kind::Begin => "B",
        Kind::End => "E",
        Kind::Value => "C",
    };
    out.push_str("{\"ph\":\"");
    out.push_str(ph);
    out.push_str("\",\"pid\":1,\"tid\":");
    out.push_str(&event.tid.to_string());
    out.push_str(",\"ts\":");
    out.push_str(&event.ts_us.to_string());
    out.push_str(",\"cat\":\"bikecap\",\"name\":\"");
    escape_json_into(out, &event.name);
    out.push('"');
    if event.kind == Kind::Value {
        let value = if event.value.is_finite() {
            event.value
        } else {
            0.0
        };
        out.push_str(",\"args\":{\"value\":");
        out.push_str(&format_f64(value));
        out.push('}');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Minimal recursive-descent JSON well-formedness checker, enough to
    /// prove the exporter emits valid JSON without pulling a parser crate
    /// into this dependency-free crate.
    fn validate_json(text: &str) -> Result<(), String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut pos = 0usize;
        skip_ws(&bytes, &mut pos);
        parse_value(&bytes, &mut pos)?;
        skip_ws(&bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at char {pos}"));
        }
        Ok(())
    }

    fn peek(bytes: &[char], pos: usize) -> Option<char> {
        bytes.get(pos).copied()
    }

    fn skip_ws(bytes: &[char], pos: &mut usize) {
        while matches!(peek(bytes, *pos), Some(' ' | '\t' | '\n' | '\r')) {
            *pos += 1;
        }
    }

    fn parse_value(bytes: &[char], pos: &mut usize) -> Result<(), String> {
        skip_ws(bytes, pos);
        match peek(bytes, *pos) {
            Some('{') => parse_object(bytes, pos),
            Some('[') => parse_array(bytes, pos),
            Some('"') => parse_string(bytes, pos),
            Some(c) if c == '-' || c.is_ascii_digit() => parse_number(bytes, pos),
            Some('t') => parse_literal(bytes, pos, "true"),
            Some('f') => parse_literal(bytes, pos, "false"),
            Some('n') => parse_literal(bytes, pos, "null"),
            other => Err(format!("unexpected {other:?} at char {pos}", pos = *pos)),
        }
    }

    fn parse_literal(bytes: &[char], pos: &mut usize, lit: &str) -> Result<(), String> {
        for expected in lit.chars() {
            if peek(bytes, *pos) != Some(expected) {
                return Err(format!("bad literal at char {}", *pos));
            }
            *pos += 1;
        }
        Ok(())
    }

    fn parse_object(bytes: &[char], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // '{'
        skip_ws(bytes, pos);
        if peek(bytes, *pos) == Some('}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(bytes, pos);
            parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            if peek(bytes, *pos) != Some(':') {
                return Err(format!("expected ':' at char {}", *pos));
            }
            *pos += 1;
            parse_value(bytes, pos)?;
            skip_ws(bytes, pos);
            match peek(bytes, *pos) {
                Some(',') => *pos += 1,
                Some('}') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn parse_array(bytes: &[char], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // '['
        skip_ws(bytes, pos);
        if peek(bytes, *pos) == Some(']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            parse_value(bytes, pos)?;
            skip_ws(bytes, pos);
            match peek(bytes, *pos) {
                Some(',') => *pos += 1,
                Some(']') => {
                    *pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn parse_string(bytes: &[char], pos: &mut usize) -> Result<(), String> {
        if peek(bytes, *pos) != Some('"') {
            return Err(format!("expected string at char {}", *pos));
        }
        *pos += 1;
        loop {
            match peek(bytes, *pos) {
                Some('"') => {
                    *pos += 1;
                    return Ok(());
                }
                Some('\\') => {
                    *pos += 2;
                }
                Some(_) => *pos += 1,
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_number(bytes: &[char], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        while matches!(
            peek(bytes, *pos),
            Some('-' | '+' | '.' | 'e' | 'E') | Some('0'..='9')
        ) {
            *pos += 1;
        }
        if *pos == start {
            return Err(format!("expected number at char {start}"));
        }
        Ok(())
    }

    /// Records a nested span tree plus a counter and exports it.
    fn sample_trace() -> String {
        let _guard = crate::tests::obs_lock();
        let sink = Arc::new(crate::MemorySink::new(128));
        crate::install(sink.clone());
        {
            let _epoch = crate::span("chrome.test.outer");
            for i in 0..3 {
                let _iter = crate::span_with(|| format!("chrome.test.iter{i}"));
                crate::value("chrome.test.entropy", 0.25 * i as f64);
            }
        }
        crate::clear();
        chrome_trace(&sink.snapshot())
    }

    #[test]
    fn export_is_well_formed_json() {
        let trace = sample_trace();
        validate_json(&trace).unwrap();
        assert!(trace.contains("\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"chrome.test.iter2\""));
    }

    #[test]
    fn begin_end_pairs_are_balanced_and_nested() {
        let _guard = crate::tests::obs_lock();
        let sink = Arc::new(crate::MemorySink::new(128));
        crate::install(sink.clone());
        {
            let _a = crate::span("bal.a");
            let _b = crate::span("bal.b");
            drop(crate::span("bal.c"));
        }
        crate::clear();
        let events = sink.snapshot();
        // Walk events per tid with a stack: every E must match the top B.
        let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
        for event in &events {
            let stack = stacks.entry(event.tid).or_default();
            match event.kind {
                Kind::Begin => stack.push(event.name.to_string()),
                Kind::End => {
                    let top = stack.pop();
                    assert_eq!(
                        top.as_deref(),
                        Some(event.name.as_ref()),
                        "E must close the innermost open B"
                    );
                }
                Kind::Value => {}
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "tid {tid} left open spans: {stack:?}");
        }
        // And the rendered trace carries one B and one E per span.
        let trace = chrome_trace(&events);
        validate_json(&trace).unwrap();
        let b_count = trace.matches("\"ph\":\"B\"").count();
        let e_count = trace.matches("\"ph\":\"E\"").count();
        assert_eq!(b_count, 3);
        assert_eq!(e_count, 3);
    }

    #[test]
    fn counter_events_carry_args() {
        let event = Event {
            ts_us: 5,
            tid: 1,
            depth: 0,
            kind: Kind::Value,
            name: Cow::Borrowed("m"),
            value: 2.5,
        };
        let trace = chrome_trace(std::slice::from_ref(&event));
        validate_json(&trace).unwrap();
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.contains("\"args\":{\"value\":2.5}"));
    }
}
