//! Analytic work model: FLOPs and bytes-moved per kernel, derived from
//! shapes alone.
//!
//! Each constructor encodes the arithmetic and memory traffic of one kernel
//! *as implemented* in `bikecap-tensor` (im2col + GEMM convolutions, two-pass
//! softmax, …), not a textbook lower bound — the point is to compare achieved
//! GFLOP/s and GB/s against the machine roofline and call a kernel memory- or
//! compute-bound. The exact formulas are documented in DESIGN.md Appendix I;
//! changing a kernel's data movement means updating the matching constructor.
//!
//! Usage: inside an existing kernel span, build the [`Work`] for the shapes
//! at hand and [`Work::record`] it. That emits two value events —
//! `perf.flops` and `perf.bytes` — which [`crate::table::roofline_table`]
//! attributes to the innermost enclosing span, so the roofline columns in
//! `bikecap profile` line up with the cost table's span names. Recording is
//! inert (one atomic load) while observability is off.

/// Analytic cost of one kernel invocation: floating-point operations and
/// bytes moved through memory (reads + writes of f32 elements).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Work {
    /// Floating-point operations (multiply and add counted separately).
    pub flops: f64,
    /// Bytes moved: every f32 element read or written, at 4 bytes each.
    pub bytes: f64,
}

/// Bytes per element everywhere in the numeric stack.
const F32: f64 = 4.0;

/// Bytes per Q8_0-quantized weight element: 36-byte blocks (one f32 scale +
/// 32 `i8`s) over 32 elements. See DESIGN.md Appendix J.
const Q8: f64 = 36.0 / 32.0;

impl Work {
    /// `C = A·B` with `A (m,k)` and `B (k,n)`: `2mkn` flops; reads both
    /// operands once and writes the output once.
    pub fn matmul(m: usize, k: usize, n: usize) -> Work {
        let (m, k, n) = (m as f64, k as f64, n as f64);
        Work {
            flops: 2.0 * m * k * n,
            bytes: F32 * (m * k + k * n + m * n),
        }
    }

    /// Quantized `C = A·Wq` with `A (m,k)` f32 and `Wq` a Q8_0 tensor of
    /// `n` rows of `k`: the dot products are the same `2mkn` arithmetic (the
    /// `i32` multiply-adds count like their f32 counterparts, plus a `2mk`
    /// on-the-fly activation quantization pass), but the weight traffic
    /// drops from 4 to 1.125 bytes per element — the arithmetic-intensity
    /// shift `bikecap profile` surfaces on the quantized path.
    pub fn matmul_q8(m: usize, k: usize, n: usize) -> Work {
        let (m, k, n) = (m as f64, k as f64, n as f64);
        Work {
            flops: 2.0 * m * k * n + 2.0 * m * k,
            bytes: F32 * (m * k + m * n) + Q8 * k * n,
        }
    }

    /// Quantized im2col + GEMM 3-D convolution: [`Work::conv3d`] with the
    /// GEMM swapped for [`Work::matmul_q8`] against the block-quantized
    /// weight — same im2col gather traffic, `1.125`-byte weight reads.
    pub fn conv3d_q8(
        batch: usize,
        c_in: usize,
        c_out: usize,
        out_dims: (usize, usize, usize),
        kernel: (usize, usize, usize),
    ) -> Work {
        let positions = (batch * out_dims.0 * out_dims.1 * out_dims.2) as f64;
        let patch = (c_in * kernel.0 * kernel.1 * kernel.2) as f64;
        let c_out = c_out as f64;
        Work {
            flops: 2.0 * positions * patch * c_out + 2.0 * positions * patch,
            bytes: F32 * (3.0 * positions * patch + positions * c_out) + Q8 * patch * c_out,
        }
    }

    /// im2col + GEMM 3-D convolution producing `(batch, c_out, od, oh, ow)`
    /// from a `c_in`-channel input with kernel `(kd, kh, kw)`.
    ///
    /// With `P = batch·od·oh·ow` output positions and `K = c_in·kd·kh·kw`
    /// patch length: `2·P·K·c_out` flops; traffic is the im2col gather read
    /// plus column write plus the GEMM's column re-read (`3·P·K`), the
    /// weights (`K·c_out`), and the output write (`P·c_out`).
    pub fn conv3d(
        batch: usize,
        c_in: usize,
        c_out: usize,
        out_dims: (usize, usize, usize),
        kernel: (usize, usize, usize),
    ) -> Work {
        let positions = (batch * out_dims.0 * out_dims.1 * out_dims.2) as f64;
        let patch = (c_in * kernel.0 * kernel.1 * kernel.2) as f64;
        let c_out = c_out as f64;
        Work {
            flops: 2.0 * positions * patch * c_out,
            bytes: F32 * (3.0 * positions * patch + patch * c_out + positions * c_out),
        }
    }

    /// GEMM + col2im transposed 3-D convolution: input `(batch, c_in, d, h,
    /// w)`, kernel `(kd, kh, kw)`, output `(batch, c_out, od, oh, ow)`.
    ///
    /// With `P = batch·d·h·w` input positions and `K = c_out·kd·kh·kw`: the
    /// GEMM is `2·P·c_in·K` flops and the col2im scatter adds another `P·K`;
    /// traffic is the input and weights once, the column matrix written and
    /// re-read (`2·P·K`), and the output's read-modify-write scatter
    /// (`2·batch·c_out·od·oh·ow`).
    pub fn conv_transpose3d(
        batch: usize,
        c_in: usize,
        c_out: usize,
        in_dims: (usize, usize, usize),
        out_dims: (usize, usize, usize),
        kernel: (usize, usize, usize),
    ) -> Work {
        let positions = (batch * in_dims.0 * in_dims.1 * in_dims.2) as f64;
        let patch = (c_out * kernel.0 * kernel.1 * kernel.2) as f64;
        let c_in = c_in as f64;
        let out_elems = (batch * c_out * out_dims.0 * out_dims.1 * out_dims.2) as f64;
        Work {
            flops: 2.0 * positions * c_in * patch + positions * patch,
            bytes: F32
                * (positions * c_in
                    + c_in * patch
                    + 2.0 * positions * patch
                    + 2.0 * out_elems),
        }
    }

    /// Numerically stable softmax over `groups` rows of `len` elements: per
    /// element one max-scan compare, a subtract, an exp (counted as one
    /// flop), a sum add, and a divide — `5n` flops; two read/write passes
    /// move each element four times.
    pub fn softmax(groups: usize, len: usize) -> Work {
        let n = (groups * len) as f64;
        Work {
            flops: 5.0 * n,
            bytes: F32 * 4.0 * n,
        }
    }

    /// Capsule squash of `vectors` vectors of dimension `dim` (paper Eq. 2):
    /// a `2·dim` dot product, the `norm²/(1+norm²)/√norm²` scale (counted as
    /// 8 flops including the sqrt), and a `dim` rescale per vector; each
    /// element is read once and written once.
    pub fn squash(vectors: usize, dim: usize) -> Work {
        let v = vectors as f64;
        let d = dim as f64;
        Work {
            flops: v * (3.0 * d + 8.0),
            bytes: F32 * 2.0 * v * d,
        }
    }

    /// Routing transform: per batch entry (fold grid cells into `batch`),
    /// every of the `s_in` input capsules predicts every of the `s_out`
    /// output capsules through its own `(d_out, d_in)` matrix — a batched
    /// matmul of `2·batch·s_in·s_out·d_in·d_out` flops; traffic is the input
    /// poses, the transform weights once, and the prediction writes.
    pub fn routing_transform(
        batch: usize,
        s_in: usize,
        s_out: usize,
        d_in: usize,
        d_out: usize,
    ) -> Work {
        let (b, si, so, di, dv) = (
            batch as f64,
            s_in as f64,
            s_out as f64,
            d_in as f64,
            d_out as f64,
        );
        Work {
            flops: 2.0 * b * si * so * di * dv,
            bytes: F32 * (b * si * di + si * so * di * dv + b * si * so * dv),
        }
    }

    /// Arithmetic intensity, flops per byte. Zero traffic yields 0 rather
    /// than a NaN so aggregations stay clean.
    pub fn intensity(&self) -> f64 {
        if self.bytes > 0.0 {
            self.flops / self.bytes
        } else {
            0.0
        }
    }

    /// Emits the model as `perf.flops` / `perf.bytes` value events inside
    /// the current span. One atomic load and out while observability is off,
    /// so kernels can call this unconditionally.
    #[inline]
    pub fn record(&self) {
        if !crate::enabled() {
            return;
        }
        crate::value("perf.flops", self.flops);
        crate::value("perf.bytes", self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_counts_multiply_add_pairs() {
        let w = Work::matmul(128, 256, 64);
        assert_eq!(w.flops, 2.0 * 128.0 * 256.0 * 64.0);
        assert_eq!(w.bytes, 4.0 * (128.0 * 256.0 + 256.0 * 64.0 + 128.0 * 64.0));
        assert!(w.intensity() > 0.0);
    }

    #[test]
    fn conv3d_matches_im2col_gemm_decomposition() {
        // 16x4x8x8x8 input, 3x3x3 same-padded, 4 -> 8 channels: the GEMM is
        // (16*512, 108) x (108, 8).
        let w = Work::conv3d(16, 4, 8, (8, 8, 8), (3, 3, 3));
        let positions = 16.0 * 512.0;
        let patch = 4.0 * 27.0;
        assert_eq!(w.flops, 2.0 * positions * patch * 8.0);
        let gemm = Work::matmul(16 * 512, 108, 8);
        // Conv moves strictly more than its GEMM: the im2col gather + column
        // materialisation add 2·P·K elements of traffic.
        assert_eq!(w.bytes - gemm.bytes, 4.0 * 2.0 * positions * patch);
    }

    #[test]
    fn conv_transpose_includes_scatter_traffic() {
        let w = Work::conv_transpose3d(2, 8, 4, (4, 6, 6), (4, 6, 6), (3, 3, 3));
        let positions = 2.0 * 4.0 * 6.0 * 6.0;
        let patch = 4.0 * 27.0;
        assert_eq!(w.flops, 2.0 * positions * 8.0 * patch + positions * patch);
        assert!(w.bytes > 4.0 * 2.0 * positions * patch);
    }

    #[test]
    fn elementwise_ops_are_memory_bound_by_construction() {
        // Softmax and squash land far below one flop per byte — the model
        // must classify them memory-bound under any sane machine balance.
        assert!(Work::softmax(1024, 16).intensity() < 2.0);
        assert!(Work::squash(4096, 8).intensity() < 2.0);
    }

    #[test]
    fn q8_variants_cut_weight_traffic_and_raise_intensity() {
        let f = Work::matmul(128, 256, 64);
        let q = Work::matmul_q8(128, 256, 64);
        // Same dot-product arithmetic (plus the activation-quantization
        // pass), 1.125-byte weights instead of 4: intensity must rise.
        assert_eq!(q.flops, f.flops + 2.0 * 128.0 * 256.0);
        assert_eq!(f.bytes - q.bytes, (4.0 - 36.0 / 32.0) * 256.0 * 64.0);
        assert!(q.intensity() > f.intensity());

        let fc = Work::conv3d(16, 4, 8, (8, 8, 8), (3, 3, 3));
        let qc = Work::conv3d_q8(16, 4, 8, (8, 8, 8), (3, 3, 3));
        assert_eq!(fc.bytes - qc.bytes, (4.0 - 36.0 / 32.0) * 108.0 * 8.0);
        assert!(qc.intensity() > fc.intensity());
    }

    #[test]
    fn zero_traffic_has_zero_intensity() {
        let w = Work {
            flops: 12.0,
            bytes: 0.0,
        };
        assert_eq!(w.intensity(), 0.0);
    }
}
