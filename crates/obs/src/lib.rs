//! Structured tracing and telemetry for the BikeCAP stack.
//!
//! The design mirrors `bikecap-faults`: a process-global switch that every
//! call site checks with a single relaxed atomic load, so the instrumented
//! hot paths (pyramid conv, squash, routing iterations, batcher stages) cost
//! nothing measurable while observability is off. When a [`Sink`] is
//! installed, spans and values flow to it as typed [`Event`]s.
//!
//! Three pieces:
//!
//! * **Spans** — [`span`] returns an RAII [`SpanGuard`]; the matching end
//!   event (with duration) is emitted when the guard drops, including during
//!   panic unwinding, so traces stay balanced even when a layer blows up.
//!   Nesting depth is tracked per thread.
//! * **Values** — [`value`] records a named scalar sample (loss, grad norm,
//!   coupling entropy, queue depth) at the current time and depth.
//! * **Sinks** — [`sink::NoopSink`] (default), [`sink::MemorySink`] (bounded
//!   ring for tests and chaos dumps), [`sink::JsonlSink`] (streaming file),
//!   plus [`chrome::chrome_trace`] to export any event slice as a Chrome
//!   `trace_event` JSON viewable in `chrome://tracing` or Perfetto.
//!
//! Span names follow the failpoint-site scheme from DESIGN.md Appendix C/D:
//! `subsystem.component.operation`, e.g. `core.routing.iter0` or
//! `serve.batch.compute`, so a failpoint and the span it fires inside share
//! a name. The compiled executor (DESIGN.md Appendix F) contributes the
//! `ir.*` family: `ir.compile` / `ir.exec` spans, `ir.plan.slabs` /
//! `ir.plan.steps` / `ir.plan.fused` / `ir.plan.arena_scalars` value events
//! describing each compiled plan, and `ir.compile.fallback` /
//! `ir.exec.fallback` value events marking silent degradations to the
//! eager path.
//!
//! The `perf.*` family carries the analytic work model ([`work::Work`],
//! DESIGN.md Appendix I): kernels emit `perf.flops` / `perf.bytes` value
//! events inside their spans, [`table::roofline_table`] joins them back to
//! the innermost enclosing span, and `bikecap profile` prints the resulting
//! per-layer GFLOP/s, GB/s, arithmetic intensity, and memory-/compute-bound
//! verdict. The compiled executor contributes per-step kernel spans
//! (`ir.step.matmul`, `ir.step.conv`, `ir.step.convt`, `ir.step.softmax`,
//! `ir.step.squash`) stamped with the same accounting from baked geometry.
//!
//! ```
//! use std::sync::Arc;
//! let sink = Arc::new(bikecap_obs::sink::MemorySink::new(64));
//! bikecap_obs::install(sink.clone());
//! {
//!     let _outer = bikecap_obs::span("demo.outer");
//!     let _inner = bikecap_obs::span("demo.inner");
//!     bikecap_obs::value("demo.metric", 1.5);
//! }
//! bikecap_obs::clear();
//! assert_eq!(sink.snapshot().len(), 5); // 2 begins, 1 value, 2 ends
//! ```

pub mod chrome;
pub mod sink;
pub mod table;
pub mod work;

use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

pub use sink::{JsonlSink, MemorySink, NoopSink, PanicDump, Sink};
pub use table::{
    cost_table, render_cost_table, render_roofline_table, roofline_table, CostRow, PerfRow,
    Roofline, Verdict,
};
pub use work::Work;

/// Process-global on/off switch. Off by default; flipped by [`install`].
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed sink. `RwLock` so the hot path takes a shared lock only
/// when enabled; writers are install/clear, which are rare.
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// Monotonic timebase shared by every event in the process; set on first use
/// so timestamps are small, positive, and comparable across threads.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Source of compact numeric thread ids (Chrome traces key lanes on `tid`).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Cached numeric id for this thread (0 = not yet assigned).
    static TID: Cell<u64> = const { Cell::new(0) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// What an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A span opened. `value` is 0.
    Begin,
    /// A span closed. `value` is the span duration in microseconds.
    End,
    /// A scalar sample. `value` is the sample.
    Value,
}

impl Kind {
    /// Stable lowercase name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Begin => "begin",
            Kind::End => "end",
            Kind::Value => "value",
        }
    }
}

/// One telemetry record. Everything a sink ever sees is one of these.
#[derive(Clone, Debug)]
pub struct Event {
    /// Microseconds since the process-wide epoch (first event).
    pub ts_us: u64,
    /// Compact numeric thread id (stable within the process).
    pub tid: u64,
    /// Span nesting depth at emission time (begin: depth of the new span).
    pub depth: u16,
    /// Begin / End / Value.
    pub kind: Kind,
    /// Dotted site name (`subsystem.component.operation`).
    pub name: Cow<'static, str>,
    /// Duration in µs for `End`, the sample for `Value`, 0 for `Begin`.
    pub value: f64,
}

/// Whether a sink is installed. One relaxed load; `#[inline]` so disabled
/// call sites compile down to a test-and-skip.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-global event destination and enables
/// recording. Replaces (and flushes) any previous sink.
pub fn install(sink: Arc<dyn Sink>) {
    if let Ok(mut slot) = SINK.write() {
        if let Some(prev) = slot.replace(sink) {
            prev.flush();
        }
        ENABLED.store(true, Ordering::SeqCst);
    }
}

/// Disables recording, flushes, and drops the installed sink. Safe to call
/// when nothing is installed.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    let prev = match SINK.write() {
        Ok(mut slot) => slot.take(),
        Err(_) => None,
    };
    if let Some(sink) = prev {
        sink.flush();
    }
}

/// Asks the installed sink (if any) to flush buffered output.
pub fn flush() {
    if let Some(sink) = current_sink() {
        sink.flush();
    }
}

/// Microseconds since the process epoch.
fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// This thread's compact numeric id, assigning one on first use.
fn tid() -> u64 {
    TID.with(|cell| {
        let cached = cell.get();
        if cached != 0 {
            return cached;
        }
        let fresh = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        cell.set(fresh);
        fresh
    })
}

/// Clones the installed sink handle, or `None` when disabled/poisoned.
fn current_sink() -> Option<Arc<dyn Sink>> {
    match SINK.read() {
        Ok(slot) => slot.clone(),
        Err(_) => None,
    }
}

/// Hands `event` to the installed sink, if any.
fn emit(event: &Event) {
    if let Some(sink) = current_sink() {
        sink.record(event);
    }
}

/// RAII handle for an open span; emits the `End` event on drop (normal exit
/// or panic unwinding alike). Inert — no allocation, no events — when obs
/// was disabled at open time.
#[must_use = "a span guard measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    /// `None` when inert (disabled at open time).
    name: Option<Cow<'static, str>>,
    start_us: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        let end_us = now_us();
        let depth = DEPTH.with(|d| {
            let popped = d.get().saturating_sub(1);
            d.set(popped);
            popped
        });
        emit(&Event {
            ts_us: end_us,
            tid: tid(),
            depth,
            kind: Kind::End,
            name,
            value: end_us.saturating_sub(self.start_us) as f64,
        });
    }
}

/// Opens a span with a static name. Returns an inert guard when disabled —
/// the fast path is one atomic load and a struct of two words.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name: None,
            start_us: 0,
        };
    }
    open(Cow::Borrowed(name))
}

/// Opens a span whose name is built lazily — `make_name` runs only when
/// enabled, so dynamic names (e.g. `routing.iter3`) cost nothing while off.
#[inline]
pub fn span_with(make_name: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name: None,
            start_us: 0,
        };
    }
    open(Cow::Owned(make_name()))
}

/// Slow path shared by [`span`]/[`span_with`]: stamp, push depth, emit.
fn open(name: Cow<'static, str>) -> SpanGuard {
    let start_us = now_us();
    let depth = DEPTH.with(|d| {
        let current = d.get();
        d.set(current.saturating_add(1));
        current
    });
    emit(&Event {
        ts_us: start_us,
        tid: tid(),
        depth,
        kind: Kind::Begin,
        name: name.clone(),
        value: 0.0,
    });
    SpanGuard {
        name: Some(name),
        start_us,
    }
}

/// Records a named scalar sample (loss, grad norm, entropy, gauge reading).
/// One atomic load and out when disabled.
#[inline]
pub fn value(name: &'static str, sample: f64) {
    if !enabled() {
        return;
    }
    record_value(Cow::Borrowed(name), sample);
}

/// [`value`] with a lazily built name; `make_name` runs only when enabled.
#[inline]
pub fn value_with(make_name: impl FnOnce() -> String, sample: f64) {
    if !enabled() {
        return;
    }
    record_value(Cow::Owned(make_name()), sample);
}

fn record_value(name: Cow<'static, str>, sample: f64) {
    emit(&Event {
        ts_us: now_us(),
        tid: tid(),
        depth: DEPTH.with(Cell::get),
        kind: Kind::Value,
        name,
        value: sample,
    });
}

/// Serializes one event as a single JSONL line (no trailing newline).
/// Non-finite values are clamped to 0 so every line stays valid JSON.
pub fn to_jsonl(event: &Event) -> String {
    let mut line = String::with_capacity(96);
    line.push_str("{\"ts_us\":");
    line.push_str(&event.ts_us.to_string());
    line.push_str(",\"tid\":");
    line.push_str(&event.tid.to_string());
    line.push_str(",\"depth\":");
    line.push_str(&event.depth.to_string());
    line.push_str(",\"kind\":\"");
    line.push_str(event.kind.as_str());
    line.push_str("\",\"name\":\"");
    escape_json_into(&mut line, &event.name);
    line.push_str("\",\"value\":");
    let value = if event.value.is_finite() {
        event.value
    } else {
        0.0
    };
    line.push_str(&format_f64(value));
    line.push('}');
    line
}

/// Formats an f64 compactly: integers without a fraction, otherwise `{}`.
pub(crate) fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Appends `raw` to `out` with JSON string escaping.
pub(crate) fn escape_json_into(out: &mut String, raw: &str) {
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes access to the process-global sink across tests.
    pub(crate) fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = obs_lock();
        clear();
        let span_guard = span("never.recorded");
        assert!(span_guard.name.is_none());
        drop(span_guard);
        // span_with must not run its closure while disabled.
        let _inert = span_with(|| unreachable!("closure ran while disabled"));
        value_with(|| unreachable!("closure ran while disabled"), 1.0);
    }

    #[test]
    fn spans_nest_and_balance() {
        let _guard = obs_lock();
        let sink = Arc::new(MemorySink::new(64));
        install(sink.clone());
        {
            let _outer = span("t.outer");
            {
                let _inner = span("t.inner");
                value("t.sample", 42.0);
            }
        }
        clear();
        let events = sink.snapshot();
        let shape: Vec<(Kind, &str, u16)> = events
            .iter()
            .map(|e| (e.kind, e.name.as_ref(), e.depth))
            .collect();
        assert_eq!(
            shape,
            vec![
                (Kind::Begin, "t.outer", 0),
                (Kind::Begin, "t.inner", 1),
                (Kind::Value, "t.sample", 2),
                (Kind::End, "t.inner", 1),
                (Kind::End, "t.outer", 0),
            ]
        );
        // End durations are non-negative and outer >= inner.
        let inner = events.iter().find(|e| e.kind == Kind::End && e.name == "t.inner");
        let outer = events.iter().find(|e| e.kind == Kind::End && e.name == "t.outer");
        match (inner, outer) {
            (Some(i), Some(o)) => assert!(o.value >= i.value),
            _ => unreachable!("both end events must exist"),
        }
    }

    #[test]
    fn spans_unwind_on_panic() {
        let _guard = obs_lock();
        let sink = Arc::new(MemorySink::new(64));
        install(sink.clone());
        let result = std::panic::catch_unwind(|| {
            let _outer = span("t.panic.outer");
            let _inner = span("t.panic.inner");
            panic!("boom");
        });
        assert!(result.is_err());
        clear();
        let events = sink.snapshot();
        let begins = events.iter().filter(|e| e.kind == Kind::Begin).count();
        let ends = events.iter().filter(|e| e.kind == Kind::End).count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2, "unwinding must close every open span");
        // Inner closes before outer even during unwinding.
        let order: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == Kind::End)
            .map(|e| e.name.as_ref())
            .collect();
        assert_eq!(order, vec!["t.panic.inner", "t.panic.outer"]);
        // Depth counter is back to zero: a fresh span starts at depth 0.
        install(sink.clone());
        drop(span("t.after"));
        clear();
        let after = sink.snapshot();
        let reopened = after
            .iter()
            .find(|e| e.name == "t.after" && e.kind == Kind::Begin);
        match reopened {
            Some(e) => assert_eq!(e.depth, 0),
            None => unreachable!("t.after begin must be recorded"),
        }
    }

    #[test]
    fn dynamic_names_reach_the_sink() {
        let _guard = obs_lock();
        let sink = Arc::new(MemorySink::new(16));
        install(sink.clone());
        let iteration = 3;
        drop(span_with(|| format!("t.iter{iteration}")));
        value_with(|| format!("t.metric{iteration}"), 0.5);
        clear();
        let names: Vec<String> = sink
            .snapshot()
            .iter()
            .map(|e| e.name.to_string())
            .collect();
        assert!(names.contains(&"t.iter3".to_string()));
        assert!(names.contains(&"t.metric3".to_string()));
    }

    #[test]
    fn jsonl_line_shape() {
        let event = Event {
            ts_us: 12,
            tid: 2,
            depth: 1,
            kind: Kind::End,
            name: Cow::Borrowed("a.b\"c"),
            value: 3.5,
        };
        assert_eq!(
            to_jsonl(&event),
            "{\"ts_us\":12,\"tid\":2,\"depth\":1,\"kind\":\"end\",\"name\":\"a.b\\\"c\",\"value\":3.5}"
        );
        let clamped = Event {
            value: f64::NAN,
            ..event
        };
        assert!(to_jsonl(&clamped).ends_with("\"value\":0}"));
    }
}
