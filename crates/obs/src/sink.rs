//! Event sinks: where recorded [`Event`]s go.
//!
//! * [`NoopSink`] — discards everything; useful to measure pure span
//!   overhead with recording "on" but storage free.
//! * [`MemorySink`] — bounded in-memory ring; the test sink, and the chaos
//!   suite's black box (see [`PanicDump`]).
//! * [`JsonlSink`] — streams one JSON object per line to a file; the
//!   `--trace foo.jsonl` backend for long training runs where an in-memory
//!   ring would drop early events.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::{to_jsonl, Event};

/// Destination for recorded events. Implementations must be cheap and
/// non-blocking-ish: `record` runs inline at the instrumentation site.
pub trait Sink: Send + Sync {
    /// Accepts one event. Must not panic.
    fn record(&self, event: &Event);
    /// Flushes buffered output; default no-op.
    fn flush(&self) {}
}

/// Discards every event.
#[derive(Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// Bounded in-memory ring buffer. When full, the oldest event is dropped,
/// so a long chaos run keeps the *latest* window — the part that explains
/// a failure.
pub struct MemorySink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl MemorySink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        MemorySink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Copies out the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        match self.buf.lock() {
            Ok(buf) => buf.iter().cloned().collect(),
            Err(poisoned) => poisoned.into_inner().iter().cloned().collect(),
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        match self.buf.lock() {
            Ok(buf) => buf.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// True when nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all buffered events.
    pub fn reset(&self) {
        if let Ok(mut buf) = self.buf.lock() {
            buf.clear();
        }
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        let mut buf = match self.buf.lock() {
            Ok(buf) => buf,
            Err(poisoned) => poisoned.into_inner(),
        };
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Streams events to a file as JSON Lines: one object per event, append
/// order = record order. Buffered; call [`Sink::flush`] (or drop the sink
/// via `obs::clear`) to guarantee the tail hits disk.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` for writing.
    ///
    /// # Errors
    ///
    /// Any error from [`File::create`].
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut out = match self.out.lock() {
            Ok(out) => out,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Write errors are swallowed: tracing must never take down the
        // traced process. A torn tail line is detectable by the reader.
        let _ = writeln!(out, "{}", to_jsonl(event));
    }

    fn flush(&self) {
        let mut out = match self.out.lock() {
            Ok(out) => out,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = out.flush();
    }
}

/// Writes `events` to stderr, one JSONL line each, under a labelled banner.
/// Used by the chaos suite so a failing seeded run leaves its event ring in
/// the CI log.
pub fn dump_to_stderr(label: &str, events: &[Event]) {
    let mut err = io::stderr().lock();
    let _ = writeln!(
        err,
        "--- bikecap-obs event ring dump [{label}]: {} events ---",
        events.len()
    );
    for event in events {
        let _ = writeln!(err, "{}", to_jsonl(event));
    }
    let _ = writeln!(err, "--- end event ring dump [{label}] ---");
}

/// Scope guard for chaos tests: holds a [`MemorySink`] and, if the scope
/// unwinds (test assertion failure, injected fault escaping), dumps the ring
/// to stderr so the failure is diagnosable from CI logs alone.
///
/// ```
/// use std::sync::Arc;
/// let sink = Arc::new(bikecap_obs::MemorySink::new(256));
/// bikecap_obs::install(sink.clone());
/// let _dump = bikecap_obs::PanicDump::new("chaos seed 3", sink);
/// // ... exercise the system; on panic the ring lands in stderr ...
/// bikecap_obs::clear();
/// ```
pub struct PanicDump {
    label: String,
    sink: Arc<MemorySink>,
}

impl PanicDump {
    /// Arms a dump of `sink` labelled `label` to fire only on unwind.
    pub fn new(label: impl Into<String>, sink: Arc<MemorySink>) -> Self {
        PanicDump {
            label: label.into(),
            sink,
        }
    }
}

impl Drop for PanicDump {
    fn drop(&mut self) {
        if std::thread::panicking() {
            dump_to_stderr(&self.label, &self.sink.snapshot());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kind, MemorySink};
    use std::borrow::Cow;

    fn event(ts_us: u64, name: &'static str) -> Event {
        Event {
            ts_us,
            tid: 1,
            depth: 0,
            kind: Kind::Value,
            name: Cow::Borrowed(name),
            value: 1.0,
        }
    }

    #[test]
    fn memory_sink_is_a_ring() {
        let sink = MemorySink::new(3);
        for i in 0..5 {
            sink.record(&event(i, "x"));
        }
        let kept: Vec<u64> = sink.snapshot().iter().map(|e| e.ts_us).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest events are evicted first");
    }

    #[test]
    fn jsonl_sink_golden() {
        let dir = std::env::temp_dir().join(format!(
            "bikecap-obs-jsonl-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("golden.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Event {
            ts_us: 10,
            tid: 1,
            depth: 0,
            kind: Kind::Begin,
            name: Cow::Borrowed("g.outer"),
            value: 0.0,
        });
        sink.record(&Event {
            ts_us: 25,
            tid: 1,
            depth: 0,
            kind: Kind::End,
            name: Cow::Borrowed("g.outer"),
            value: 15.0,
        });
        sink.flush();
        let written = std::fs::read_to_string(&path).unwrap();
        let expected = "\
{\"ts_us\":10,\"tid\":1,\"depth\":0,\"kind\":\"begin\",\"name\":\"g.outer\",\"value\":0}\n\
{\"ts_us\":25,\"tid\":1,\"depth\":0,\"kind\":\"end\",\"name\":\"g.outer\",\"value\":15}\n";
        assert_eq!(written, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_dump_fires_only_on_unwind() {
        // Quiet path: no panic, drop must not print (we can't capture
        // stderr here, but we can at least assert it doesn't panic).
        let sink = Arc::new(MemorySink::new(8));
        drop(PanicDump::new("quiet", sink.clone()));
        // Unwinding path: the guard must survive a dump during panic.
        let sink2 = sink.clone();
        let result = std::panic::catch_unwind(move || {
            let _dump = PanicDump::new("loud", sink2);
            panic!("chaos");
        });
        assert!(result.is_err());
    }
}
