//! Per-layer cost aggregation: folds a recorded event stream into a table
//! of (span name → call count, total/mean/max µs), the summary `bikecap
//! profile` prints next to the trace file — plus the roofline view, which
//! joins the same spans against the `perf.flops` / `perf.bytes` value
//! events the work model emits (see [`crate::work`]) to report achieved
//! GFLOP/s, GB/s, arithmetic intensity, and a memory-/compute-bound
//! verdict per layer.

use std::collections::HashMap;

use crate::{Event, Kind};

/// Aggregated cost of one span name across a recording.
#[derive(Clone, Debug, PartialEq)]
pub struct CostRow {
    /// Span name (`subsystem.component.operation`).
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Sum of span durations, µs.
    pub total_us: f64,
    /// Mean span duration, µs.
    pub mean_us: f64,
    /// Largest single span duration, µs.
    pub max_us: f64,
}

/// Folds `End` events into per-name cost rows, sorted by total time
/// descending (ties broken by name for determinism).
pub fn cost_table(events: &[Event]) -> Vec<CostRow> {
    let mut acc: HashMap<&str, (u64, f64, f64)> = HashMap::new();
    for event in events {
        if event.kind != Kind::End {
            continue;
        }
        let slot = acc.entry(event.name.as_ref()).or_insert((0, 0.0, 0.0));
        slot.0 += 1;
        slot.1 += event.value;
        slot.2 = slot.2.max(event.value);
    }
    let mut rows: Vec<CostRow> = acc
        .into_iter()
        .map(|(name, (count, total_us, max_us))| CostRow {
            name: name.to_string(),
            count,
            total_us,
            mean_us: total_us / count as f64,
            max_us,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total_us
            .partial_cmp(&a.total_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

/// Renders rows as an aligned plain-text table (header + one line per row).
pub fn render_cost_table(rows: &[CostRow]) -> String {
    let name_width = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_width$}  {:>7}  {:>12}  {:>10}  {:>10}\n",
        "span", "calls", "total_us", "mean_us", "max_us"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<name_width$}  {:>7}  {:>12.0}  {:>10.1}  {:>10.0}\n",
            row.name, row.count, row.total_us, row.mean_us, row.max_us
        ));
    }
    out
}

/// Machine roofline parameters: scalar-f32 peak compute and sustainable
/// memory bandwidth. Their ratio is the *ridge point* — kernels whose
/// arithmetic intensity falls below it cannot be compute-bound no matter how
/// good the code is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Roofline {
    /// Peak scalar f32 throughput, GFLOP/s.
    pub peak_gflops: f64,
    /// Sustainable memory bandwidth, GB/s.
    pub peak_gbps: f64,
}

impl Default for Roofline {
    /// Conservative scalar defaults (one FMA per cycle at ~3 GHz, one DDR
    /// channel): the verdicts only need the *ratio* to be in the right
    /// ballpark. Override with `BIKECAP_PEAK_GFLOPS` / `BIKECAP_PEAK_GBPS`
    /// via [`Roofline::from_env`] when calibrated numbers exist.
    fn default() -> Roofline {
        Roofline {
            peak_gflops: 6.0,
            peak_gbps: 12.0,
        }
    }
}

impl Roofline {
    /// Default parameters overridden by the `BIKECAP_PEAK_GFLOPS` /
    /// `BIKECAP_PEAK_GBPS` environment variables when set and positive.
    pub fn from_env() -> Roofline {
        let mut r = Roofline::default();
        if let Some(v) = env_f64("BIKECAP_PEAK_GFLOPS") {
            r.peak_gflops = v;
        }
        if let Some(v) = env_f64("BIKECAP_PEAK_GBPS") {
            r.peak_gbps = v;
        }
        r
    }

    /// The ridge point: flops per byte at which the machine transitions from
    /// memory- to compute-bound.
    pub fn ridge(&self) -> f64 {
        self.peak_gflops / self.peak_gbps
    }

    /// Classifies an achieved arithmetic intensity against the ridge.
    pub fn verdict(&self, intensity: f64) -> Verdict {
        if intensity < self.ridge() {
            Verdict::MemoryBound
        } else {
            Verdict::ComputeBound
        }
    }
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|v| *v > 0.0)
}

/// Which roof a kernel is under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Intensity below the ridge: bandwidth limits throughput.
    MemoryBound,
    /// Intensity at or above the ridge: arithmetic limits throughput.
    ComputeBound,
}

impl Verdict {
    /// Stable lowercase label for tables and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::MemoryBound => "memory-bound",
            Verdict::ComputeBound => "compute-bound",
        }
    }
}

/// One span's aggregated roofline row.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfRow {
    /// Span name the work was recorded under.
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Sum of span durations, µs.
    pub total_us: f64,
    /// Total modeled work, GFLOP.
    pub gflop: f64,
    /// Total modeled traffic, GB.
    pub gbyte: f64,
    /// Achieved throughput, GFLOP/s.
    pub gflops_per_s: f64,
    /// Achieved bandwidth, GB/s.
    pub gb_per_s: f64,
    /// Arithmetic intensity, flops per byte.
    pub intensity: f64,
    /// Memory- or compute-bound under the given [`Roofline`].
    pub verdict: Verdict,
}

/// Joins `perf.flops` / `perf.bytes` value events against their innermost
/// enclosing span (reconstructed per thread from Begin/End nesting) and
/// folds the result into per-span roofline rows, sorted by total modeled
/// work descending. Spans that never recorded work are omitted — the plain
/// [`cost_table`] still covers them.
///
/// Robust to truncated recordings (a bounded [`crate::sink::MemorySink`]
/// may have dropped early events): value events with no open span and
/// unmatched ends are skipped.
pub fn roofline_table(events: &[Event], roofline: &Roofline) -> Vec<PerfRow> {
    // Per-tid stack of open span names.
    let mut stacks: HashMap<u64, Vec<&str>> = HashMap::new();
    // name -> (count, total_us, flops, bytes)
    let mut acc: HashMap<&str, (u64, f64, f64, f64)> = HashMap::new();
    for event in events {
        match event.kind {
            Kind::Begin => stacks.entry(event.tid).or_default().push(event.name.as_ref()),
            Kind::End => {
                let stack = stacks.entry(event.tid).or_default();
                stack.pop();
                let slot = acc.entry(event.name.as_ref()).or_insert((0, 0.0, 0.0, 0.0));
                slot.0 += 1;
                slot.1 += event.value;
            }
            Kind::Value => {
                let field = match event.name.as_ref() {
                    "perf.flops" => 2,
                    "perf.bytes" => 3,
                    _ => continue,
                };
                let Some(owner) = stacks.get(&event.tid).and_then(|s| s.last().copied())
                else {
                    continue;
                };
                let slot = acc.entry(owner).or_insert((0, 0.0, 0.0, 0.0));
                if field == 2 {
                    slot.2 += event.value;
                } else {
                    slot.3 += event.value;
                }
            }
        }
    }
    let mut rows: Vec<PerfRow> = acc
        .into_iter()
        .filter(|(_, (_, _, flops, bytes))| *flops > 0.0 || *bytes > 0.0)
        .map(|(name, (count, total_us, flops, bytes))| {
            let secs = total_us * 1e-6;
            let intensity = if bytes > 0.0 { flops / bytes } else { 0.0 };
            PerfRow {
                name: name.to_string(),
                count,
                total_us,
                gflop: flops / 1e9,
                gbyte: bytes / 1e9,
                gflops_per_s: if secs > 0.0 { flops / 1e9 / secs } else { 0.0 },
                gb_per_s: if secs > 0.0 { bytes / 1e9 / secs } else { 0.0 },
                intensity,
                verdict: roofline.verdict(intensity),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.gflop
            .partial_cmp(&a.gflop)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

/// Renders roofline rows as an aligned plain-text table, headed by the
/// machine parameters the verdicts were judged against.
pub fn render_roofline_table(rows: &[PerfRow], roofline: &Roofline) -> String {
    let name_width = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    out.push_str(&format!(
        "roofline: peak {:.1} GFLOP/s, {:.1} GB/s, ridge {:.2} flop/byte\n",
        roofline.peak_gflops,
        roofline.peak_gbps,
        roofline.ridge()
    ));
    out.push_str(&format!(
        "{:<name_width$}  {:>7}  {:>10}  {:>9}  {:>9}  {:>8}  {:>9}  {}\n",
        "span", "calls", "total_us", "gflop/s", "gb/s", "gflop", "flop/byte", "verdict"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<name_width$}  {:>7}  {:>10.0}  {:>9.3}  {:>9.3}  {:>8.4}  {:>9.2}  {}\n",
            row.name,
            row.count,
            row.total_us,
            row.gflops_per_s,
            row.gb_per_s,
            row.gflop,
            row.intensity,
            row.verdict.as_str()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn end(name: &'static str, dur: f64) -> Event {
        Event {
            ts_us: 0,
            tid: 1,
            depth: 0,
            kind: Kind::End,
            name: Cow::Borrowed(name),
            value: dur,
        }
    }

    #[test]
    fn aggregates_and_sorts_by_total() {
        let events = vec![
            end("fast", 10.0),
            end("slow", 100.0),
            end("fast", 30.0),
            Event {
                kind: Kind::Begin,
                ..end("ignored", 0.0)
            },
        ];
        let rows = cost_table(&events);
        assert_eq!(rows.len(), 2);
        let first = rows.first().expect("two rows");
        assert_eq!(first.name, "slow");
        assert_eq!(first.count, 1);
        let second = rows.get(1).expect("two rows");
        assert_eq!(second.name, "fast");
        assert_eq!(second.count, 2);
        assert!((second.total_us - 40.0).abs() < 1e-9);
        assert!((second.mean_us - 20.0).abs() < 1e-9);
        assert!((second.max_us - 30.0).abs() < 1e-9);
    }

    fn at(tid: u64, kind: Kind, name: &'static str, value: f64) -> Event {
        Event {
            ts_us: 0,
            tid,
            depth: 0,
            kind,
            name: Cow::Borrowed(name),
            value,
        }
    }

    #[test]
    fn roofline_attributes_work_to_innermost_span() {
        // outer > inner nesting: work recorded inside `inner` must not leak
        // into `outer`, and spans without work must not appear at all.
        let events = vec![
            at(1, Kind::Begin, "outer", 0.0),
            at(1, Kind::Begin, "inner", 0.0),
            at(1, Kind::Value, "perf.flops", 2e9),
            at(1, Kind::Value, "perf.bytes", 1e9),
            at(1, Kind::Value, "unrelated.metric", 7.0),
            at(1, Kind::End, "inner", 1_000_000.0), // 1 s
            at(1, Kind::End, "outer", 2_000_000.0),
        ];
        let roofline = Roofline {
            peak_gflops: 6.0,
            peak_gbps: 12.0,
        };
        let rows = roofline_table(&events, &roofline);
        assert_eq!(rows.len(), 1);
        let row = rows.first().expect("one row");
        assert_eq!(row.name, "inner");
        assert_eq!(row.count, 1);
        assert!((row.gflops_per_s - 2.0).abs() < 1e-9);
        assert!((row.gb_per_s - 1.0).abs() < 1e-9);
        assert!((row.intensity - 2.0).abs() < 1e-9);
        // Intensity 2.0 >= ridge 0.5 -> compute-bound.
        assert_eq!(row.verdict, Verdict::ComputeBound);
    }

    #[test]
    fn roofline_keeps_threads_separate_and_survives_truncation() {
        // Thread 2's value event has no open span on thread 2 (its begin was
        // dropped by the ring) — it must be skipped, not attributed to
        // thread 1's open span.
        let events = vec![
            at(1, Kind::Begin, "kernel", 0.0),
            at(2, Kind::Value, "perf.flops", 5e9),
            at(1, Kind::Value, "perf.flops", 1e9),
            at(1, Kind::Value, "perf.bytes", 8e9),
            at(1, Kind::End, "kernel", 500_000.0),
            at(2, Kind::End, "orphan", 10.0),
        ];
        let rows = roofline_table(&events, &Roofline::default());
        assert_eq!(rows.len(), 1);
        let row = rows.first().expect("one row");
        assert_eq!(row.name, "kernel");
        assert!((row.gflop - 1.0).abs() < 1e-9, "thread-2 flops leaked in");
        assert_eq!(row.verdict, Verdict::MemoryBound);
    }

    #[test]
    fn roofline_render_shows_ridge_and_verdicts() {
        let events = vec![
            at(1, Kind::Begin, "k", 0.0),
            at(1, Kind::Value, "perf.flops", 1e9),
            at(1, Kind::Value, "perf.bytes", 1e10),
            at(1, Kind::End, "k", 1000.0),
        ];
        let roofline = Roofline::default();
        let text = render_roofline_table(&roofline_table(&events, &roofline), &roofline);
        assert!(text.contains("ridge"));
        assert!(text.contains("gflop/s"));
        assert!(text.contains("memory-bound"));
    }

    #[test]
    fn render_includes_header_and_rows() {
        let rows = cost_table(&[end("a.b", 5.0)]);
        let text = render_cost_table(&rows);
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        assert!(header.contains("span") && header.contains("total_us"));
        let line = lines.next().unwrap_or_default();
        assert!(line.starts_with("a.b"));
        assert!(line.contains('5'));
    }
}
