//! Per-layer cost aggregation: folds a recorded event stream into a table
//! of (span name → call count, total/mean/max µs), the summary `bikecap
//! profile` prints next to the trace file.

use std::collections::HashMap;

use crate::{Event, Kind};

/// Aggregated cost of one span name across a recording.
#[derive(Clone, Debug, PartialEq)]
pub struct CostRow {
    /// Span name (`subsystem.component.operation`).
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Sum of span durations, µs.
    pub total_us: f64,
    /// Mean span duration, µs.
    pub mean_us: f64,
    /// Largest single span duration, µs.
    pub max_us: f64,
}

/// Folds `End` events into per-name cost rows, sorted by total time
/// descending (ties broken by name for determinism).
pub fn cost_table(events: &[Event]) -> Vec<CostRow> {
    let mut acc: HashMap<&str, (u64, f64, f64)> = HashMap::new();
    for event in events {
        if event.kind != Kind::End {
            continue;
        }
        let slot = acc.entry(event.name.as_ref()).or_insert((0, 0.0, 0.0));
        slot.0 += 1;
        slot.1 += event.value;
        slot.2 = slot.2.max(event.value);
    }
    let mut rows: Vec<CostRow> = acc
        .into_iter()
        .map(|(name, (count, total_us, max_us))| CostRow {
            name: name.to_string(),
            count,
            total_us,
            mean_us: total_us / count as f64,
            max_us,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total_us
            .partial_cmp(&a.total_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

/// Renders rows as an aligned plain-text table (header + one line per row).
pub fn render_cost_table(rows: &[CostRow]) -> String {
    let name_width = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_width$}  {:>7}  {:>12}  {:>10}  {:>10}\n",
        "span", "calls", "total_us", "mean_us", "max_us"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<name_width$}  {:>7}  {:>12.0}  {:>10.1}  {:>10.0}\n",
            row.name, row.count, row.total_us, row.mean_us, row.max_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn end(name: &'static str, dur: f64) -> Event {
        Event {
            ts_us: 0,
            tid: 1,
            depth: 0,
            kind: Kind::End,
            name: Cow::Borrowed(name),
            value: dur,
        }
    }

    #[test]
    fn aggregates_and_sorts_by_total() {
        let events = vec![
            end("fast", 10.0),
            end("slow", 100.0),
            end("fast", 30.0),
            Event {
                kind: Kind::Begin,
                ..end("ignored", 0.0)
            },
        ];
        let rows = cost_table(&events);
        assert_eq!(rows.len(), 2);
        let first = rows.first().expect("two rows");
        assert_eq!(first.name, "slow");
        assert_eq!(first.count, 1);
        let second = rows.get(1).expect("two rows");
        assert_eq!(second.name, "fast");
        assert_eq!(second.count, 2);
        assert!((second.total_us - 40.0).abs() < 1e-9);
        assert!((second.mean_us - 20.0).abs() < 1e-9);
        assert!((second.max_us - 30.0).abs() < 1e-9);
    }

    #[test]
    fn render_includes_header_and_rows() {
        let rows = cost_table(&[end("a.b", 5.0)]);
        let text = render_cost_table(&rows);
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        assert!(header.contains("span") && header.contains("total_us"));
        let line = lines.next().unwrap_or_default();
        assert!(line.starts_with("a.b"));
        assert!(line.contains('5'));
    }
}
