//! Disabled-mode cost contract: with no sink installed, opening spans and
//! recording values must not allocate at all. A counting global allocator
//! (this test binary only) makes the claim checkable rather than aspirational.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_and_values_do_not_allocate() {
    bikecap_obs::clear();
    assert!(!bikecap_obs::enabled());

    // Warm up thread-locals and lazy statics outside the measured window.
    {
        let _warm = bikecap_obs::span("warmup");
        bikecap_obs::value("warmup", 0.0);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000 {
        let _outer = bikecap_obs::span("zero.alloc.outer");
        let _inner = bikecap_obs::span_with(|| format!("zero.alloc.iter{i}"));
        bikecap_obs::value("zero.alloc.metric", i as f64);
        bikecap_obs::value_with(|| format!("zero.alloc.metric{i}"), i as f64);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled obs must be allocation-free on the hot path"
    );
}
