//! CSV import/export of trip records.
//!
//! The on-disk format mirrors the paper's Tables I and II so real bike-share
//! or transit datasets can be adapted to the same pipeline. A dependency-free
//! CSV subset is used: comma-separated, no quoting (no field in these schemas
//! needs it), one header line.

use std::fmt;
use std::fs;
use std::io::{self, BufRead as _, Write as _};
use std::path::Path;

use crate::generate::{SimConfig, TripData};
use crate::layout::{Cell, CityLayout};
use crate::records::{BikeRecord, BikeStatus, SubwayRecord, SubwayStatus};

/// Header of the subway CSV.
pub const SUBWAY_HEADER: &str = "record_id,card_id,time_min,line,status,station";
/// Header of the bike CSV.
pub const BIKE_HEADER: &str = "record_id,user_id,time_min,row,col,lat,lon,status,bike_id";

/// Errors from reading record CSVs.
#[derive(Debug)]
pub enum ReadRecordsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ReadRecordsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadRecordsError::Io(e) => write!(f, "i/o error reading records: {e}"),
            ReadRecordsError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ReadRecordsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadRecordsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadRecordsError {
    fn from(e: io::Error) -> Self {
        ReadRecordsError::Io(e)
    }
}

/// Writes the subway record stream as CSV.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_subway_csv(records: &[SubwayRecord], path: impl AsRef<Path>) -> io::Result<()> {
    let mut out = io::BufWriter::new(fs::File::create(path)?);
    writeln!(out, "{SUBWAY_HEADER}")?;
    for r in records {
        let status = match r.status {
            SubwayStatus::Boarding => "boarding",
            SubwayStatus::Disembarking => "disembarking",
        };
        writeln!(
            out,
            "{},{},{},{},{},{}",
            r.record_id, r.card_id, r.time_min, r.line, status, r.station
        )?;
    }
    out.flush()
}

/// Writes the bike record stream as CSV.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_bike_csv(records: &[BikeRecord], path: impl AsRef<Path>) -> io::Result<()> {
    let mut out = io::BufWriter::new(fs::File::create(path)?);
    writeln!(out, "{BIKE_HEADER}")?;
    for r in records {
        let status = match r.status {
            BikeStatus::PickUp => "pickup",
            BikeStatus::DropOff => "dropoff",
        };
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            r.record_id,
            r.user_id,
            r.time_min,
            r.cell.row,
            r.cell.col,
            r.gps.0,
            r.gps.1,
            status,
            r.bike_id
        )?;
    }
    out.flush()
}

fn field<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    name: &str,
) -> Result<&'a str, ReadRecordsError> {
    parts.next().ok_or_else(|| ReadRecordsError::Parse {
        line,
        message: format!("missing field '{name}'"),
    })
}

fn parse<T: std::str::FromStr>(s: &str, line: usize, name: &str) -> Result<T, ReadRecordsError> {
    s.parse().map_err(|_| ReadRecordsError::Parse {
        line,
        message: format!("invalid {name}: '{s}'"),
    })
}

/// Reads a subway CSV written by [`write_subway_csv`] (or produced from an
/// external dataset in the same schema).
///
/// # Errors
///
/// Returns [`ReadRecordsError`] on I/O failure or malformed content.
pub fn read_subway_csv(path: impl AsRef<Path>) -> Result<Vec<SubwayRecord>, ReadRecordsError> {
    let file = io::BufReader::new(fs::File::open(path)?);
    let mut out = Vec::new();
    for (idx, line) in file.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        if idx == 0 {
            if line.trim() != SUBWAY_HEADER {
                return Err(ReadRecordsError::Parse {
                    line: 1,
                    message: format!("expected header '{SUBWAY_HEADER}'"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let record_id = parse(field(&mut parts, line_no, "record_id")?, line_no, "record_id")?;
        let card_id = parse(field(&mut parts, line_no, "card_id")?, line_no, "card_id")?;
        let time_min = parse(field(&mut parts, line_no, "time_min")?, line_no, "time_min")?;
        let line_id = parse(field(&mut parts, line_no, "line")?, line_no, "line")?;
        let status = match field(&mut parts, line_no, "status")? {
            "boarding" => SubwayStatus::Boarding,
            "disembarking" => SubwayStatus::Disembarking,
            other => {
                return Err(ReadRecordsError::Parse {
                    line: line_no,
                    message: format!("unknown subway status '{other}'"),
                })
            }
        };
        let station = parse(field(&mut parts, line_no, "station")?, line_no, "station")?;
        out.push(SubwayRecord {
            record_id,
            card_id,
            time_min,
            line: line_id,
            status,
            station,
        });
    }
    Ok(out)
}

/// Reads a bike CSV written by [`write_bike_csv`].
///
/// # Errors
///
/// Returns [`ReadRecordsError`] on I/O failure or malformed content.
pub fn read_bike_csv(path: impl AsRef<Path>) -> Result<Vec<BikeRecord>, ReadRecordsError> {
    let file = io::BufReader::new(fs::File::open(path)?);
    let mut out = Vec::new();
    for (idx, line) in file.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        if idx == 0 {
            if line.trim() != BIKE_HEADER {
                return Err(ReadRecordsError::Parse {
                    line: 1,
                    message: format!("expected header '{BIKE_HEADER}'"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let record_id = parse(field(&mut parts, line_no, "record_id")?, line_no, "record_id")?;
        let user_id = parse(field(&mut parts, line_no, "user_id")?, line_no, "user_id")?;
        let time_min = parse(field(&mut parts, line_no, "time_min")?, line_no, "time_min")?;
        let row = parse(field(&mut parts, line_no, "row")?, line_no, "row")?;
        let col = parse(field(&mut parts, line_no, "col")?, line_no, "col")?;
        let lat = parse(field(&mut parts, line_no, "lat")?, line_no, "lat")?;
        let lon = parse(field(&mut parts, line_no, "lon")?, line_no, "lon")?;
        let status = match field(&mut parts, line_no, "status")? {
            "pickup" => BikeStatus::PickUp,
            "dropoff" => BikeStatus::DropOff,
            other => {
                return Err(ReadRecordsError::Parse {
                    line: line_no,
                    message: format!("unknown bike status '{other}'"),
                })
            }
        };
        let bike_id = parse(field(&mut parts, line_no, "bike_id")?, line_no, "bike_id")?;
        out.push(BikeRecord {
            record_id,
            user_id,
            time_min,
            cell: Cell { row, col },
            gps: (lat, lon),
            status,
            bike_id,
        });
    }
    Ok(out)
}

/// Rebuilds a [`TripData`] from CSV streams plus the layout/config they were
/// generated (or adapted) for.
pub fn trip_data_from_csv(
    subway_path: impl AsRef<Path>,
    bike_path: impl AsRef<Path>,
    layout: CityLayout,
    config: SimConfig,
) -> Result<TripData, ReadRecordsError> {
    Ok(TripData {
        subway: read_subway_csv(subway_path)?,
        bike: read_bike_csv(bike_path)?,
        layout,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bikecap-io-{name}-{}", std::process::id()))
    }

    fn small_trips() -> TripData {
        let mut rng = StdRng::seed_from_u64(33);
        let mut config = SimConfig::small();
        config.days = 1;
        let layout = CityLayout::generate(&config, &mut rng);
        Simulator::new(config, layout).run(&mut rng)
    }

    #[test]
    fn csv_roundtrip_preserves_every_record() {
        let trips = small_trips();
        let sp = tmp("subway.csv");
        let bp = tmp("bike.csv");
        write_subway_csv(&trips.subway, &sp).unwrap();
        write_bike_csv(&trips.bike, &bp).unwrap();
        let back = trip_data_from_csv(&sp, &bp, trips.layout.clone(), trips.config.clone()).unwrap();
        assert_eq!(back.subway.len(), trips.subway.len());
        assert_eq!(back.bike.len(), trips.bike.len());
        assert_eq!(back.subway.first(), trips.subway.first());
        assert_eq!(back.bike.last(), trips.bike.last());
        fs::remove_file(sp).ok();
        fs::remove_file(bp).ok();
    }

    #[test]
    fn read_rejects_wrong_header() {
        let p = tmp("badheader.csv");
        fs::write(&p, "who,what\n").unwrap();
        let err = read_subway_csv(&p).unwrap_err();
        assert!(matches!(err, ReadRecordsError::Parse { line: 1, .. }));
        fs::remove_file(p).ok();
    }

    #[test]
    fn read_rejects_malformed_row() {
        let p = tmp("badrow.csv");
        fs::write(&p, format!("{SUBWAY_HEADER}\n1,2,not_a_time,0,boarding,3\n")).unwrap();
        let err = read_subway_csv(&p).unwrap_err();
        match err {
            ReadRecordsError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("time_min"));
            }
            other => panic!("unexpected error {other}"),
        }
        fs::remove_file(p).ok();
    }

    #[test]
    fn read_rejects_unknown_status() {
        let p = tmp("badstatus.csv");
        fs::write(&p, format!("{SUBWAY_HEADER}\n1,2,3.5,0,teleporting,3\n")).unwrap();
        let err = read_subway_csv(&p).unwrap_err();
        assert!(err.to_string().contains("teleporting"));
        fs::remove_file(p).ok();
    }

    #[test]
    fn aggregation_identical_after_roundtrip() {
        use crate::aggregate::DemandSeries;
        let trips = small_trips();
        let sp = tmp("agg-subway.csv");
        let bp = tmp("agg-bike.csv");
        write_subway_csv(&trips.subway, &sp).unwrap();
        write_bike_csv(&trips.bike, &bp).unwrap();
        let back = trip_data_from_csv(&sp, &bp, trips.layout.clone(), trips.config.clone()).unwrap();
        let a = DemandSeries::from_trips(&trips, 15);
        let b = DemandSeries::from_trips(&back, 15);
        assert_eq!(a.data, b.data);
        fs::remove_file(sp).ok();
        fs::remove_file(bp).ok();
    }
}
