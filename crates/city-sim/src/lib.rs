//! Synthetic Shenzhen-style city simulator.
//!
//! The paper evaluates on one month of proprietary bike and subway trip
//! records from Shenzhen (Tables I/II). This crate is the documented
//! substitution (see DESIGN.md): it generates **record-level** subway and
//! bike trips from a generative model that embeds, by construction, the
//! phenomenon the paper exploits — *upstream* subway demand leads
//! *downstream* bike demand with spatially- and temporally-specific lags
//! (Fig. 1):
//!
//! 1. A city grid with residential and commercial (CBD) zones
//!    ([`layout::CityLayout`]).
//! 2. Subway lines whose stations sit on grid cells; origin–destination flows
//!    follow diurnal rush-hour profiles ([`profiles`]), so residential
//!    boardings in the morning become CBD alightings 15–90 minutes later.
//! 3. A tunable fraction of alighting passengers picks up a shared bike near
//!    the station within minutes ([`generate::SimConfig::bike_transfer_prob`])
//!    — the last-mile trips the paper's intro motivates.
//! 4. Background bike trips, weekday/weekend structure, per-day weather
//!    factors and optional event spikes add realistic noise.
//!
//! Records aggregate into 15-minute spatio-temporal tensors exactly as in the
//! paper's preprocessing ([`aggregate`]), then into normalised sliding-window
//! datasets ([`dataset`]).
//!
//! ```
//! use bikecap_city_sim::generate::{SimConfig, Simulator};
//! use bikecap_city_sim::layout::CityLayout;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let config = SimConfig::small(); // 2 days, 6x6 grid — for tests/docs
//! let layout = CityLayout::generate(&config, &mut rng);
//! let trips = Simulator::new(config, layout).run(&mut rng);
//! assert!(!trips.bike.is_empty() && !trips.subway.is_empty());
//! ```

pub mod aggregate;
pub mod dataset;
pub mod generate;
pub mod layout;
pub mod profiles;
pub mod io;
pub mod records;
pub mod scenario;
pub mod transfer;
mod util;

pub use aggregate::{AggregateError, DemandSeries, FEATURES, F_BIKE_DROPOFF, F_BIKE_PICKUP, F_SUBWAY_ALIGHT, F_SUBWAY_BOARD};
pub use dataset::{Batch, ForecastDataset, Normalizer, Split};
pub use generate::{SimConfig, Simulator, TripData};
pub use layout::CityLayout;
pub use scenario::{EventSpike, Scenario, SensorDropout, StationOutage, WeatherShock};
