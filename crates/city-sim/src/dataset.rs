//! Normalisation, splits and sliding-window datasets.
//!
//! Follows the paper's protocol (Sec. IV-D): min–max normalisation to
//! `[0, 1]`, a 6:2:2 train/validation/test split along time, two hours
//! (8 slots) of history, and 2–8 future slots. Normalisation statistics are
//! fitted on the training segment only.

use bikecap_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::aggregate::{DemandSeries, FEATURES, F_BIKE_PICKUP};

/// Which temporal segment of the data to draw windows from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// First 60% of the timeline.
    Train,
    /// Next 20%.
    Val,
    /// Final 20%.
    Test,
}

/// Per-channel min–max normaliser (the paper's re-scaling step).
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

impl Normalizer {
    /// Fits per-channel minima and maxima over `slots` of the series.
    ///
    /// # Panics
    ///
    /// Panics if the slot range is empty or out of bounds.
    pub fn fit(series: &DemandSeries, slots: std::ops::Range<usize>) -> Self {
        assert!(!slots.is_empty(), "cannot fit a normaliser on an empty range");
        assert!(slots.end <= series.num_slots(), "slot range out of bounds");
        let window = series.data.narrow(0, slots.start, slots.end - slots.start);
        let mut mins = Vec::with_capacity(FEATURES);
        let mut maxs = Vec::with_capacity(FEATURES);
        for f in 0..FEATURES {
            let ch = window.narrow(1, f, 1);
            mins.push(ch.min_value());
            maxs.push(ch.max_value());
        }
        Normalizer { mins, maxs }
    }

    /// The fitted `(min, max)` of a channel.
    pub fn channel_range(&self, channel: usize) -> (f32, f32) {
        (self.mins[channel], self.maxs[channel])
    }

    /// Normalises a `(T, F, H, W)` tensor channel-wise into `[0, 1]`
    /// (values outside the fitted range extrapolate linearly).
    ///
    /// # Panics
    ///
    /// Panics unless axis 1 has `FEATURES` channels.
    pub fn normalize(&self, data: &Tensor) -> Tensor {
        assert_eq!(data.shape()[1], FEATURES, "expected {FEATURES} channels");
        let mut out = data.clone();
        let shape = data.shape().to_vec();
        let (t, f) = (shape[0], shape[1]);
        let plane: usize = shape[2..].iter().product();
        let buf = out.as_mut_slice();
        for ti in 0..t {
            for fi in 0..f {
                let scale = (self.maxs[fi] - self.mins[fi]).max(1e-6);
                let base = (ti * f + fi) * plane;
                for v in &mut buf[base..base + plane] {
                    *v = (*v - self.mins[fi]) / scale;
                }
            }
        }
        out
    }

    /// Maps normalised values of `channel` back to counts.
    pub fn denormalize_channel(&self, data: &Tensor, channel: usize) -> Tensor {
        let scale = (self.maxs[channel] - self.mins[channel]).max(1e-6);
        data.map(|v| v * scale + self.mins[channel])
    }
}

/// A minibatch of forecasting windows.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Normalised inputs, `(B, FEATURES, h, H, W)` — channels-first for 3-D
    /// convolution.
    pub input: Tensor,
    /// Normalised bike pick-up targets, `(B, p, H, W)`.
    pub target: Tensor,
}

impl Batch {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.input.shape()[0]
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Sliding-window dataset over a normalised demand series.
#[derive(Debug, Clone)]
pub struct ForecastDataset {
    normalized: Tensor, // (T, F, H, W)
    normalizer: Normalizer,
    history: usize,
    horizon: usize,
    train_end: usize,
    val_end: usize,
    height: usize,
    width: usize,
}

impl ForecastDataset {
    /// Builds a dataset with `history` input slots and `horizon` target
    /// slots, splitting 6:2:2 and fitting normalisation on the training
    /// segment.
    ///
    /// # Panics
    ///
    /// Panics if the series is too short for even one window per split.
    pub fn new(series: &DemandSeries, history: usize, horizon: usize) -> Self {
        let t = series.num_slots();
        let train_end = t * 6 / 10;
        let val_end = t * 8 / 10;
        assert!(
            train_end > history + horizon && t - val_end > history + horizon,
            "series of {t} slots too short for history {history} + horizon {horizon}"
        );
        let normalizer = Normalizer::fit(series, 0..train_end);
        let normalized = normalizer.normalize(&series.data);
        ForecastDataset {
            normalized,
            normalizer,
            history,
            horizon,
            train_end,
            val_end,
            height: series.height,
            width: series.width,
        }
    }

    /// Input history length `h`.
    pub fn history(&self) -> usize {
        self.history
    }

    /// Target horizon length `p`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Grid extents `(H, W)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.height, self.width)
    }

    /// The fitted normaliser.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    fn segment(&self, split: Split) -> std::ops::Range<usize> {
        match split {
            Split::Train => 0..self.train_end,
            Split::Val => self.train_end..self.val_end,
            Split::Test => self.val_end..self.normalized.shape()[0],
        }
    }

    /// Valid window anchors for a split. An anchor `t` spans input slots
    /// `t-h+1..=t` and target slots `t+1..=t+p`, all inside the segment.
    pub fn anchors(&self, split: Split) -> Vec<usize> {
        let seg = self.segment(split);
        let lo = seg.start + self.history.saturating_sub(1);
        (lo..seg.end.saturating_sub(self.horizon)).collect()
    }

    /// Shuffled training-style anchors.
    pub fn shuffled_anchors<R: Rng + ?Sized>(&self, split: Split, rng: &mut R) -> Vec<usize> {
        let mut a = self.anchors(split);
        a.shuffle(rng);
        a
    }

    /// Assembles a batch from explicit anchors.
    ///
    /// # Panics
    ///
    /// Panics if an anchor is out of range for its window.
    pub fn batch(&self, anchors: &[usize]) -> Batch {
        let b = anchors.len();
        let (h, w) = (self.height, self.width);
        let mut input = Tensor::zeros(&[b, FEATURES, self.history, h, w]);
        let mut target = Tensor::zeros(&[b, self.horizon, h, w]);
        let plane = h * w;
        let src = self.normalized.as_slice();
        let t_total = self.normalized.shape()[0];
        for (bi, &anchor) in anchors.iter().enumerate() {
            assert!(
                anchor + 1 >= self.history && anchor + self.horizon < t_total,
                "anchor {anchor} out of range"
            );
            for (di, slot) in (anchor + 1 - self.history..=anchor).enumerate() {
                for f in 0..FEATURES {
                    let src_base = (slot * FEATURES + f) * plane;
                    let dst_base = (((bi * FEATURES + f) * self.history) + di) * plane;
                    input.as_mut_slice()[dst_base..dst_base + plane]
                        .copy_from_slice(&src[src_base..src_base + plane]);
                }
            }
            for (pi, slot) in (anchor + 1..=anchor + self.horizon).enumerate() {
                let src_base = (slot * FEATURES + F_BIKE_PICKUP) * plane;
                let dst_base = (bi * self.horizon + pi) * plane;
                target.as_mut_slice()[dst_base..dst_base + plane]
                    .copy_from_slice(&src[src_base..src_base + plane]);
            }
        }
        Batch { input, target }
    }

    /// Denormalises a `(…)`-shaped tensor of bike pick-up predictions back to
    /// counts.
    pub fn denormalize_target(&self, pred: &Tensor) -> Tensor {
        self.normalizer.denormalize_channel(pred, F_BIKE_PICKUP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{SimConfig, Simulator};
    use crate::layout::CityLayout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn series(seed: u64) -> DemandSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = SimConfig::small();
        let layout = CityLayout::generate(&config, &mut rng);
        let trips = Simulator::new(config, layout).run(&mut rng);
        DemandSeries::from_trips(&trips, 15)
    }

    #[test]
    fn normalizer_maps_train_range_to_unit_interval() {
        let s = series(1);
        let n = Normalizer::fit(&s, 0..s.num_slots() * 6 / 10);
        let norm = n.normalize(&s.data);
        // Training segment strictly within [0, 1].
        let train = norm.narrow(0, 0, s.num_slots() * 6 / 10);
        assert!(train.min_value() >= 0.0);
        assert!(train.max_value() <= 1.0 + 1e-6);
    }

    #[test]
    fn normalize_denormalize_roundtrip() {
        let s = series(2);
        let n = Normalizer::fit(&s, 0..s.num_slots());
        let norm = n.normalize(&s.data);
        let back = n.denormalize_channel(&norm.narrow(1, F_BIKE_PICKUP, 1), F_BIKE_PICKUP);
        let orig = s.data.narrow(1, F_BIKE_PICKUP, 1);
        bikecap_tensor::assert_close(&back, &orig, 1e-2);
    }

    #[test]
    fn splits_are_disjoint_and_ordered() {
        let s = series(3);
        let ds = ForecastDataset::new(&s, 8, 4);
        let train = ds.anchors(Split::Train);
        let val = ds.anchors(Split::Val);
        let test = ds.anchors(Split::Test);
        assert!(!train.is_empty() && !val.is_empty() && !test.is_empty());
        assert!(train.last().unwrap() < val.first().unwrap());
        assert!(val.last().unwrap() < test.first().unwrap());
    }

    #[test]
    fn no_window_crosses_split_boundaries() {
        let s = series(4);
        let ds = ForecastDataset::new(&s, 8, 4);
        for &a in &ds.anchors(Split::Val) {
            // Input slots start after the train segment.
            assert!(a + 1 - ds.history() >= s.num_slots() * 6 / 10);
            // Target slots end before the test segment.
            assert!(a + ds.horizon() < s.num_slots() * 8 / 10);
        }
    }

    #[test]
    fn batch_shapes_and_values() {
        let s = series(5);
        let ds = ForecastDataset::new(&s, 8, 3);
        let anchors = ds.anchors(Split::Train);
        let batch = ds.batch(&anchors[..4]);
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        assert_eq!(batch.input.shape(), &[4, FEATURES, 8, s.height, s.width]);
        assert_eq!(batch.target.shape(), &[4, 3, s.height, s.width]);
        // Normalised values.
        assert!(batch.input.min_value() >= 0.0);
        assert!(batch.target.min_value() >= 0.0);
    }

    #[test]
    fn batch_windows_align_with_source() {
        // The last input slot (bike channel) of anchor t equals the
        // normalised series at slot t; the first target is slot t+1.
        let s = series(6);
        let ds = ForecastDataset::new(&s, 4, 2);
        let a = ds.anchors(Split::Train)[10];
        let batch = ds.batch(&[a]);
        let n = ds.normalizer().normalize(&s.data);
        for row in 0..s.height {
            for col in 0..s.width {
                assert_eq!(
                    batch.input.get(&[0, F_BIKE_PICKUP, 3, row, col]),
                    n.get(&[a, F_BIKE_PICKUP, row, col])
                );
                assert_eq!(
                    batch.target.get(&[0, 0, row, col]),
                    n.get(&[a + 1, F_BIKE_PICKUP, row, col])
                );
            }
        }
    }

    #[test]
    fn shuffled_anchors_permute_deterministically() {
        let s = series(7);
        let ds = ForecastDataset::new(&s, 8, 2);
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(1);
        let a1 = ds.shuffled_anchors(Split::Train, &mut rng1);
        let a2 = ds.shuffled_anchors(Split::Train, &mut rng2);
        assert_eq!(a1, a2);
        let mut sorted = a1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, ds.anchors(Split::Train));
    }

    #[test]
    fn denormalize_target_restores_scale() {
        let s = series(8);
        let ds = ForecastDataset::new(&s, 8, 2);
        let (lo, hi) = ds.normalizer().channel_range(F_BIKE_PICKUP);
        let ones = Tensor::ones(&[2, 2]);
        let denorm = ds.denormalize_target(&ones);
        assert!((denorm.get(&[0, 0]) - hi).abs() < 1e-4);
        let zeros = Tensor::zeros(&[2, 2]);
        assert!((ds.denormalize_target(&zeros).get(&[0, 0]) - lo).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn dataset_rejects_too_short_series() {
        let s = series(9);
        // A horizon longer than the validation segment must fail.
        let _ = ForecastDataset::new(&s, 60, 60);
    }
}
