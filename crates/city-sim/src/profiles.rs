//! Diurnal demand profiles.
//!
//! These drive the rush-hour structure the paper's Fig. 1 illustrates: the
//! home→work direction peaks 7–9 AM, the work→home direction 17–19 PM, with a
//! weaker midday plateau and flatter weekends.

/// Minutes per day.
pub const MINUTES_PER_DAY: u32 = 24 * 60;

/// A smooth bump centred at `centre_min` with the given width (minutes).
fn bump(minute_of_day: f32, centre_min: f32, width: f32) -> f32 {
    let d = (minute_of_day - centre_min) / width;
    (-0.5 * d * d).exp()
}

/// Intensity multiplier for *home → work* travel at `minute_of_day`
/// (0..1440). Peaks in the morning rush, with a small evening echo
/// (late shifts).
pub fn home_to_work(minute_of_day: f32, weekend: bool) -> f32 {
    if weekend {
        // Weekend: one broad, lower midday bump.
        0.35 * bump(minute_of_day, 13.0 * 60.0, 180.0)
    } else {
        bump(minute_of_day, 8.0 * 60.0, 55.0) + 0.15 * bump(minute_of_day, 14.0 * 60.0, 120.0)
    }
}

/// Intensity multiplier for *work → home* travel at `minute_of_day`.
/// Peaks in the evening rush.
pub fn work_to_home(minute_of_day: f32, weekend: bool) -> f32 {
    if weekend {
        0.35 * bump(minute_of_day, 16.0 * 60.0, 180.0)
    } else {
        bump(minute_of_day, 18.0 * 60.0, 65.0) + 0.12 * bump(minute_of_day, 12.5 * 60.0, 90.0)
    }
}

/// Background (non-commute) travel intensity: small, positive during waking
/// hours, near zero overnight.
pub fn background(minute_of_day: f32) -> f32 {
    0.12 * bump(minute_of_day, 13.0 * 60.0, 240.0)
}

/// True when `day` (0-based from the simulation start, which models Monday
/// 2018-10-01) is a Saturday or Sunday.
pub fn is_weekend(day: u32) -> bool {
    matches!(day % 7, 5 | 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morning_peak_dominates_home_to_work() {
        let at_8 = home_to_work(8.0 * 60.0, false);
        let at_18 = home_to_work(18.0 * 60.0, false);
        let at_3 = home_to_work(3.0 * 60.0, false);
        assert!(at_8 > at_18);
        assert!(at_8 > 5.0 * at_3);
    }

    #[test]
    fn evening_peak_dominates_work_to_home() {
        let at_18 = work_to_home(18.0 * 60.0, false);
        let at_8 = work_to_home(8.0 * 60.0, false);
        assert!(at_18 > 2.0 * at_8);
    }

    #[test]
    fn weekends_are_flatter_and_lower() {
        let wk = home_to_work(8.0 * 60.0, false);
        let we = home_to_work(8.0 * 60.0, true);
        assert!(we < wk * 0.5);
        // Weekend peak sits around midday.
        assert!(home_to_work(13.0 * 60.0, true) > home_to_work(8.0 * 60.0, true));
    }

    #[test]
    fn october_2018_weekday_calendar() {
        // 2018-10-01 was a Monday; the first weekend days are day 5 and 6.
        assert!(!is_weekend(0));
        assert!(!is_weekend(4));
        assert!(is_weekend(5));
        assert!(is_weekend(6));
        assert!(!is_weekend(7));
        assert!(is_weekend(12));
    }

    #[test]
    fn profiles_are_nonnegative_everywhere() {
        for m in 0..MINUTES_PER_DAY {
            let m = m as f32;
            assert!(home_to_work(m, false) >= 0.0);
            assert!(work_to_home(m, false) >= 0.0);
            assert!(background(m) >= 0.0);
        }
    }

    #[test]
    fn overnight_background_is_negligible() {
        assert!(background(3.0 * 60.0) < 0.1 * background(13.0 * 60.0));
    }
}
