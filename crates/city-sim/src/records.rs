//! Trip record types matching the paper's Tables I and II.
//!
//! Timestamps are minutes (with fractional seconds) since the simulation
//! start, which models 2018-10-01 00:00:00 — [`format_datetime`] renders the
//! paper's `YYYY-MM-DD HH:MM:SS` form for display.

use crate::layout::Cell;

/// Boarding vs disembarking, per Table I's `Status` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubwayStatus {
    /// Passenger entered the paid area (check-in).
    Boarding,
    /// Passenger exited the paid area (check-out).
    Disembarking,
}

/// One subway smart-card event (Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct SubwayRecord {
    /// Sequential record number.
    pub record_id: u64,
    /// Anonymised card id (the paper's `SZT ID`).
    pub card_id: u64,
    /// Minutes since simulation start.
    pub time_min: f64,
    /// Subway line number (0-based).
    pub line: usize,
    /// Event type.
    pub status: SubwayStatus,
    /// Station id (index into the layout's station list).
    pub station: usize,
}

/// Pick-up vs drop-off, per Table II's `Status` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BikeStatus {
    /// Rental start.
    PickUp,
    /// Rental end.
    DropOff,
}

/// One shared-bike event (Table II). The GPS point is synthesised from the
/// grid cell; the cell itself is retained since aggregation is grid-based.
#[derive(Debug, Clone, PartialEq)]
pub struct BikeRecord {
    /// Sequential record number.
    pub record_id: u64,
    /// Anonymised user id.
    pub user_id: u64,
    /// Minutes since simulation start.
    pub time_min: f64,
    /// Grid cell of the event.
    pub cell: Cell,
    /// Synthesised GPS point `(latitude, longitude)`.
    pub gps: (f64, f64),
    /// Event type.
    pub status: BikeStatus,
    /// Bike id.
    pub bike_id: u64,
}

/// Renders a simulation timestamp as `YYYY-MM-DD HH:MM:SS`, anchored at
/// 2018-10-01 00:00:00 (the paper's collection start).
pub fn format_datetime(time_min: f64) -> String {
    let total_seconds = (time_min * 60.0).floor() as u64;
    let day = total_seconds / 86_400;
    let secs = total_seconds % 86_400;
    let (hh, mm, ss) = (secs / 3600, (secs % 3600) / 60, secs % 60);
    // October has 31 days; the simulator never exceeds one month.
    let date_day = 1 + day;
    format!("2018-10-{date_day:02} {hh:02}:{mm:02}:{ss:02}")
}

/// Synthesises a GPS point for a cell: Shenzhen-ish anchor with 500 m cells.
pub fn cell_to_gps(cell: Cell, offset: (f64, f64)) -> (f64, f64) {
    // ~0.0045 degrees latitude per 500 m; longitude scaled by cos(lat).
    const LAT0: f64 = 22.49;
    const LON0: f64 = 113.86;
    const DEG_PER_CELL_LAT: f64 = 0.0045;
    let deg_per_cell_lon = DEG_PER_CELL_LAT / (22.5f64.to_radians().cos());
    (
        LAT0 + (cell.row as f64 + offset.0) * DEG_PER_CELL_LAT,
        LON0 + (cell.col as f64 + offset.1) * deg_per_cell_lon,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datetime_formatting_matches_paper_examples() {
        assert_eq!(format_datetime(0.0), "2018-10-01 00:00:00");
        // 21:32:12 on day 0 = 21*60 + 32 + 12/60 minutes.
        let t = 21.0 * 60.0 + 32.0 + 12.0 / 60.0;
        assert_eq!(format_datetime(t), "2018-10-01 21:32:12");
        // Next day rolls the date.
        assert_eq!(format_datetime(1440.0 + 671.0 + 43.0 / 60.0), "2018-10-02 11:11:43");
    }

    #[test]
    fn gps_is_monotone_in_cell_indices() {
        let a = cell_to_gps(Cell { row: 0, col: 0 }, (0.5, 0.5));
        let b = cell_to_gps(Cell { row: 3, col: 5 }, (0.5, 0.5));
        assert!(b.0 > a.0 && b.1 > a.1);
        // Roughly Shenzhen.
        assert!((22.0..23.5).contains(&a.0));
        assert!((113.0..115.0).contains(&a.1));
    }

    #[test]
    fn record_types_are_comparable() {
        let r = SubwayRecord {
            record_id: 1,
            card_id: 7,
            time_min: 12.5,
            line: 0,
            status: SubwayStatus::Boarding,
            station: 3,
        };
        assert_eq!(r, r.clone());
        assert_ne!(SubwayStatus::Boarding, SubwayStatus::Disembarking);
        assert_ne!(BikeStatus::PickUp, BikeStatus::DropOff);
    }
}
