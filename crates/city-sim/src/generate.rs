//! Record-level trip generation.

use rand::Rng;

use crate::layout::{Cell, CityLayout};
use crate::profiles::{background, home_to_work, is_weekend, work_to_home};
use crate::records::{cell_to_gps, BikeRecord, BikeStatus, SubwayRecord, SubwayStatus};
use crate::scenario::Scenario;
use crate::util::poisson;

/// Configuration of the synthetic city and simulation horizon.
///
/// Defaults model the paper's setting (one month, 7 subway lines) at a
/// laptop-scale grid; [`SimConfig::small`] is a fast variant for tests and
/// doc examples.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Simulated days (the paper's dataset covers 31).
    pub days: u32,
    /// Grid rows (`N_g1`).
    pub grid_height: usize,
    /// Grid columns (`N_g2`).
    pub grid_width: usize,
    /// Number of subway lines (the paper's dataset has 7).
    pub subway_lines: usize,
    /// Cells between consecutive stations along a line.
    pub station_stride: usize,
    /// Minutes of travel per grid cell along a line.
    pub minutes_per_hop: f32,
    /// Scale of subway origin–destination flows (trips/minute per unit
    /// weight product).
    pub od_scale: f64,
    /// Probability that an alighting passenger transfers to a shared bike —
    /// the upstream→downstream coupling.
    pub bike_transfer_prob: f64,
    /// Mean minutes between alighting and bike pick-up.
    pub transfer_lag_mean_min: f64,
    /// Scale of background (non-transfer) bike trips.
    pub bike_background_rate: f64,
    /// Minutes of bike riding per grid cell of distance.
    pub ride_minutes_per_cell: f64,
    /// Std-dev of the per-day demand multiplier (weather etc.).
    pub day_factor_std: f64,
    /// Persistence (per 15-min slot) of the per-station AR(1) demand surge
    /// process. Surges originate at stations, ride the subway, and reach
    /// downstream bike demand with the travel lag — the aperiodic,
    /// upstream-predictable variation BikeCAP exploits.
    pub surge_rho: f64,
    /// Innovation std-dev of the surge process (log-scale).
    pub surge_sigma: f64,
    /// Per-day probability of a local event that multiplies demand.
    pub event_probability: f64,
    /// Demand multiplier inside an event's area and hours.
    pub event_multiplier: f64,
    /// Scheduled regime-shift disturbances (weather shock, event spike,
    /// station outage, sensor dropout). [`Scenario::none`] — the default —
    /// consumes no RNG draws and leaves the simulation bitwise unchanged.
    pub scenario: Scenario,
}

impl SimConfig {
    /// The default month-long configuration mirroring the paper's setting.
    pub fn paper_scale() -> Self {
        SimConfig {
            days: 31,
            grid_height: 8,
            grid_width: 8,
            subway_lines: 7,
            station_stride: 2,
            minutes_per_hop: 4.0,
            od_scale: 0.12,
            bike_transfer_prob: 0.55,
            transfer_lag_mean_min: 4.0,
            bike_background_rate: 0.09,
            ride_minutes_per_cell: 3.0,
            day_factor_std: 0.12,
            surge_rho: 0.92,
            surge_sigma: 0.16,
            event_probability: 0.08,
            event_multiplier: 2.2,
            scenario: Scenario::none(),
        }
    }

    /// A 2-day, 6x6, 3-line configuration for tests and examples.
    pub fn small() -> Self {
        SimConfig {
            days: 2,
            grid_height: 6,
            grid_width: 6,
            subway_lines: 3,
            ..Self::paper_scale()
        }
    }

    /// Total simulated minutes.
    pub fn total_minutes(&self) -> u32 {
        self.days * 24 * 60
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// The generated record streams plus the layout they were generated on.
#[derive(Debug, Clone)]
pub struct TripData {
    /// All subway events, time-ordered.
    pub subway: Vec<SubwayRecord>,
    /// All bike events, time-ordered.
    pub bike: Vec<BikeRecord>,
    /// The city the records were generated on.
    pub layout: CityLayout,
    /// The generating configuration.
    pub config: SimConfig,
}

impl TripData {
    /// Number of subway *trips* (boarding/disembarking pairs).
    pub fn subway_trips(&self) -> usize {
        self.subway.len() / 2
    }

    /// Number of bike *trips* (pick-up/drop-off pairs).
    pub fn bike_trips(&self) -> usize {
        self.bike.len() / 2
    }
}

/// One local event (festival / concert): a centre cell, a radius, active
/// hours within a day, and the day it occurs.
#[derive(Debug, Clone, Copy)]
struct Event {
    day: u32,
    centre: Cell,
    radius: usize,
    start_min: f32,
    end_min: f32,
}

/// Generates subway and bike records for a configured city.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
    layout: CityLayout,
}

impl Simulator {
    /// Creates a simulator over a layout (normally from
    /// [`CityLayout::generate`] with the same config).
    pub fn new(config: SimConfig, layout: CityLayout) -> Self {
        Simulator { config, layout }
    }

    /// The layout being simulated.
    pub fn layout(&self) -> &CityLayout {
        &self.layout
    }

    /// Runs the full simulation, producing time-ordered record streams.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> TripData {
        let cfg = &self.config;
        let lay = &self.layout;
        // Scenario knobs are pure functions of (time, cell, id): with
        // `Scenario::none()` every factor is exactly 1.0 and every predicate
        // false, so the RNG stream — and hence the whole simulation — is
        // bitwise identical to a run without scenarios.
        let scen = &cfg.scenario;
        let mut subway: Vec<SubwayRecord> = Vec::new();
        let mut bike: Vec<BikeRecord> = Vec::new();
        let mut next_record: u64 = 0;
        let mut next_card: u64 = 0;
        let mut next_user: u64 = 0;
        let mut next_bike: u64 = 0;

        // Pre-compute per-station weights.
        let res: Vec<f32> = lay
            .stations
            .iter()
            .map(|s| lay.residential_weight(s.cell))
            .collect();
        let com: Vec<f32> = lay
            .stations
            .iter()
            .map(|s| lay.commercial_weight(s.cell))
            .collect();

        // Per-station AR(1) log-multipliers: hours-long surges that originate
        // upstream and propagate to downstream bike demand with the travel
        // lag. These are the aperiodic fluctuations a purely clock-driven
        // model cannot anticipate.
        let mut surge_log: Vec<f64> = vec![0.0; lay.stations.len()];

        for day in 0..cfg.days {
            let weekend = is_weekend(day);
            let day_factor = (1.0 + rng.gen_range(-1.0..1.0) * cfg.day_factor_std)
                .clamp(0.6, 1.5);
            let event = if rng.gen_range(0.0f64..1.0) < cfg.event_probability {
                Some(Event {
                    day,
                    centre: Cell {
                        row: rng.gen_range(0..lay.height),
                        col: rng.gen_range(0..lay.width),
                    },
                    radius: 1,
                    start_min: rng.gen_range(10.0f32..16.0) * 60.0,
                    end_min: rng.gen_range(18.0f32..22.0) * 60.0,
                })
            } else {
                None
            };

            for slot in 0..96u32 {
                let minute0 = (day * 1440 + slot * 15) as f64;
                let mid = (slot * 15 + 7) as f32; // slot-centre minute of day
                // Advance the surge processes every slot (day and night, so
                // the state is continuous across the skipped deep-night
                // slots).
                for m in &mut surge_log {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0f64..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    *m = cfg.surge_rho * *m + cfg.surge_sigma * z;
                }
                let hw = home_to_work(mid, weekend) as f64;
                let wh = work_to_home(mid, weekend) as f64;
                let bg = background(mid) as f64;
                if hw + wh + bg < 1e-5 {
                    continue; // deep night: negligible demand
                }
                let event_mult = |cell: Cell| -> f64 {
                    match event {
                        Some(e)
                            if e.day == day
                                && mid >= e.start_min
                                && mid <= e.end_min
                                && cell.chebyshev(e.centre) <= e.radius =>
                        {
                            cfg.event_multiplier
                        }
                        _ => 1.0,
                    }
                };

                for a in 0..lay.stations.len() {
                    for b in 0..lay.stations.len() {
                        if a == b {
                            continue;
                        }
                        if scen.station_blocked(minute0, a) || scen.station_blocked(minute0, b) {
                            continue; // outage: no service at either end
                        }
                        let lam = cfg.od_scale
                            * 15.0
                            * day_factor
                            * surge_log[a].exp()
                            * event_mult(lay.stations[b].cell)
                            * scen.demand_factor(minute0, lay.stations[b].cell)
                            * ((res[a] * com[b]) as f64 * hw
                                + (com[a] * res[b]) as f64 * wh
                                + ((res[a] + com[a]) * (res[b] + com[b])) as f64 * bg * 0.2);
                        let n = poisson(rng, lam);
                        for _ in 0..n {
                            let t_board = minute0 + rng.gen_range(0.0f64..15.0);
                            let travel =
                                lay.travel_minutes(a, b) as f64 * rng.gen_range(0.9f64..1.1);
                            let t_alight = t_board + travel;
                            if t_alight >= cfg.total_minutes() as f64 {
                                continue;
                            }
                            let card = next_card;
                            next_card += 1;
                            subway.push(SubwayRecord {
                                record_id: next_record,
                                card_id: card,
                                time_min: t_board,
                                line: lay.stations[a].line,
                                status: SubwayStatus::Boarding,
                                station: a,
                            });
                            next_record += 1;
                            subway.push(SubwayRecord {
                                record_id: next_record,
                                card_id: card,
                                time_min: t_alight,
                                line: lay.stations[b].line,
                                status: SubwayStatus::Disembarking,
                                station: b,
                            });
                            next_record += 1;

                            // Last-mile bike transfer.
                            if rng.gen_range(0.0f64..1.0) < cfg.bike_transfer_prob {
                                let lag = rng.gen_range(0.5..2.0) * cfg.transfer_lag_mean_min;
                                let t_pick = t_alight + lag;
                                let pick_cell = self.jitter_cell(lay.stations[b].cell, 1, rng);
                                let drop_cell = self.ride_destination(pick_cell, rng);
                                let dur = (pick_cell.manhattan(drop_cell).max(1) as f64)
                                    * cfg.ride_minutes_per_cell
                                    * rng.gen_range(0.8f64..1.3);
                                let t_drop = t_pick + dur;
                                if t_drop < cfg.total_minutes() as f64 {
                                    let (user, bid) = (next_user, next_bike);
                                    next_user += 1;
                                    next_bike += 1;
                                    Self::push_bike_pair(
                                        &mut bike,
                                        &mut next_record,
                                        user,
                                        bid,
                                        (t_pick, pick_cell),
                                        (t_drop, drop_cell),
                                        rng,
                                    );
                                }
                            }
                        }
                    }
                }

                // Background bike trips, independent of the subway.
                for row in 0..lay.height {
                    for col in 0..lay.width {
                        let cell = Cell { row, col };
                        let w = (lay.residential_weight(cell) + lay.commercial_weight(cell))
                            as f64;
                        let lam = cfg.bike_background_rate
                            * 15.0
                            * day_factor
                            * event_mult(cell)
                            * scen.demand_factor(minute0, cell)
                            * w
                            * (bg * 2.0 + hw + wh);
                        let n = poisson(rng, lam);
                        for _ in 0..n {
                            let t_pick = minute0 + rng.gen_range(0.0f64..15.0);
                            let drop_cell = self.ride_destination(cell, rng);
                            let dur = (cell.manhattan(drop_cell).max(1) as f64)
                                * cfg.ride_minutes_per_cell
                                * rng.gen_range(0.8f64..1.3);
                            let t_drop = t_pick + dur;
                            if t_drop < cfg.total_minutes() as f64 {
                                let (user, bid) = (next_user, next_bike);
                                next_user += 1;
                                next_bike += 1;
                                Self::push_bike_pair(
                                    &mut bike,
                                    &mut next_record,
                                    user,
                                    bid,
                                    (t_pick, cell),
                                    (t_drop, drop_cell),
                                    rng,
                                );
                            }
                        }
                    }
                }
            }
        }

        // Sensor dropout happens after generation, like a flaky telemetry
        // feed: records are lost from the stream, not from the city. This
        // can leave unpaired pick-ups/drop-offs — exactly what a real gap
        // looks like downstream.
        if scen.sensor_dropout.is_some() {
            bike.retain(|r| !scen.drops_bike_record(r.time_min, r.record_id));
        }
        subway.sort_by(|x, y| x.time_min.total_cmp(&y.time_min));
        bike.sort_by(|x, y| x.time_min.total_cmp(&y.time_min));
        TripData {
            subway,
            bike,
            layout: self.layout.clone(),
            config: self.config.clone(),
        }
    }

    /// Shifts a cell by up to `radius` in each direction (clamped to grid),
    /// keeping the original with probability ~1/2.
    fn jitter_cell<R: Rng + ?Sized>(&self, cell: Cell, radius: i64, rng: &mut R) -> Cell {
        if rng.gen_range(0.0f64..1.0) < 0.5 {
            return cell;
        }
        let row = (cell.row as i64 + rng.gen_range(-radius..=radius))
            .clamp(0, self.layout.height as i64 - 1) as usize;
        let col = (cell.col as i64 + rng.gen_range(-radius..=radius))
            .clamp(0, self.layout.width as i64 - 1) as usize;
        Cell { row, col }
    }

    /// Samples a bike drop-off cell within 2 cells of the origin, weighted by
    /// combined land use (short last-mile rides).
    fn ride_destination<R: Rng + ?Sized>(&self, from: Cell, rng: &mut R) -> Cell {
        let lay = &self.layout;
        let mut candidates: Vec<(Cell, f32)> = Vec::new();
        let r = 2i64;
        for dr in -r..=r {
            for dc in -r..=r {
                let row = from.row as i64 + dr;
                let col = from.col as i64 + dc;
                if row < 0 || col < 0 || row >= lay.height as i64 || col >= lay.width as i64 {
                    continue;
                }
                let cell = Cell {
                    row: row as usize,
                    col: col as usize,
                };
                let w = lay.residential_weight(cell) + lay.commercial_weight(cell) + 0.05;
                candidates.push((cell, w));
            }
        }
        let total: f32 = candidates.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen_range(0.0..total);
        for (cell, w) in &candidates {
            pick -= w;
            if pick <= 0.0 {
                return *cell;
            }
        }
        from
    }

    #[allow(clippy::too_many_arguments)]
    fn push_bike_pair<R: Rng + ?Sized>(
        bike: &mut Vec<BikeRecord>,
        next_record: &mut u64,
        user: u64,
        bike_id: u64,
        pick: (f64, Cell),
        drop: (f64, Cell),
        rng: &mut R,
    ) {
        let mut offset = || (rng.gen_range(0.0f64..1.0), rng.gen_range(0.0f64..1.0));
        let o1 = offset();
        let o2 = offset();
        bike.push(BikeRecord {
            record_id: *next_record,
            user_id: user,
            time_min: pick.0,
            cell: pick.1,
            gps: cell_to_gps(pick.1, o1),
            status: BikeStatus::PickUp,
            bike_id,
        });
        *next_record += 1;
        bike.push(BikeRecord {
            record_id: *next_record,
            user_id: user,
            time_min: drop.0,
            cell: drop.1,
            gps: cell_to_gps(drop.1, o2),
            status: BikeStatus::DropOff,
            bike_id,
        });
        *next_record += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_run(seed: u64) -> TripData {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = SimConfig::small();
        let layout = CityLayout::generate(&config, &mut rng);
        Simulator::new(config, layout).run(&mut rng)
    }

    #[test]
    fn produces_paired_records() {
        let data = small_run(1);
        assert!(data.subway_trips() > 100, "too few subway trips");
        assert!(data.bike_trips() > 50, "too few bike trips");
        assert_eq!(data.subway.len() % 2, 0);
        assert_eq!(data.bike.len() % 2, 0);
        // Every card id appears exactly twice (board + alight).
        let mut counts = std::collections::HashMap::new();
        for r in &data.subway {
            *counts.entry(r.card_id).or_insert(0u32) += 1;
        }
        assert!(counts.values().all(|&c| c == 2));
    }

    #[test]
    fn records_are_time_ordered_and_within_horizon() {
        let data = small_run(2);
        let horizon = data.config.total_minutes() as f64;
        for pair in data.subway.windows(2) {
            assert!(pair[0].time_min <= pair[1].time_min);
        }
        for r in &data.subway {
            assert!(r.time_min >= 0.0 && r.time_min < horizon);
        }
        for r in &data.bike {
            assert!(r.time_min >= 0.0 && r.time_min < horizon);
        }
    }

    #[test]
    fn boardings_equal_alightings() {
        let data = small_run(3);
        let boards = data
            .subway
            .iter()
            .filter(|r| r.status == SubwayStatus::Boarding)
            .count();
        assert_eq!(boards * 2, data.subway.len());
    }

    #[test]
    fn bike_pickups_cluster_near_stations() {
        // Transfer trips dominate background trips, so pick-up density within
        // 1 cell of a station should exceed the density far from stations.
        let data = small_run(4);
        let lay = &data.layout;
        let near = |c: Cell| {
            lay.stations
                .iter()
                .any(|s| s.cell.chebyshev(c) <= 1)
        };
        let mut near_cells = 0usize;
        let mut far_cells = 0usize;
        for row in 0..lay.height {
            for col in 0..lay.width {
                if near(Cell { row, col }) {
                    near_cells += 1;
                } else {
                    far_cells += 1;
                }
            }
        }
        if far_cells == 0 {
            return; // dense network: nothing to compare
        }
        let mut near_picks = 0usize;
        let mut far_picks = 0usize;
        for r in data.bike.iter().filter(|r| r.status == BikeStatus::PickUp) {
            if near(r.cell) {
                near_picks += 1;
            } else {
                far_picks += 1;
            }
        }
        let near_density = near_picks as f64 / near_cells as f64;
        let far_density = (far_picks as f64 + 1.0) / far_cells as f64;
        assert!(
            near_density > far_density,
            "expected station-adjacent pick-up density ({near_density:.1}) to exceed background ({far_density:.1})"
        );
    }

    #[test]
    fn morning_boardings_peak_at_residential_stations() {
        let data = small_run(5);
        let lay = &data.layout;
        let res_station = lay.most_residential_station().id;
        let mut morning = 0usize;
        let mut night = 0usize;
        for r in &data.subway {
            if r.station == res_station && r.status == SubwayStatus::Boarding {
                let mod_min = r.time_min % 1440.0;
                if (420.0..540.0).contains(&mod_min) {
                    morning += 1;
                } else if mod_min < 300.0 {
                    night += 1;
                }
            }
        }
        assert!(
            morning > night,
            "morning rush ({morning}) should exceed night ({night})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_run(7);
        let b = small_run(7);
        assert_eq!(a.subway.len(), b.subway.len());
        assert_eq!(a.bike.len(), b.bike.len());
        assert_eq!(a.subway.first(), b.subway.first());
        assert_eq!(a.bike.last(), b.bike.last());
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_run(8);
        let b = small_run(9);
        assert_ne!(a.subway.len(), b.subway.len());
    }

    #[test]
    fn scenario_out_of_window_is_bitwise_neutral() {
        use crate::scenario::{Scenario, WeatherShock};
        // A scenario whose window never intersects the simulation must not
        // perturb a single RNG draw: the runs are bitwise identical.
        let mut config = SimConfig::small();
        config.scenario = Scenario {
            weather_shock: Some(WeatherShock {
                start_min: 1e9,
                end_min: 2e9,
                demand_factor: 0.1,
            }),
            ..Scenario::none()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let layout = CityLayout::generate(&config, &mut rng);
        let shocked = Simulator::new(config, layout).run(&mut rng);
        let baseline = small_run(11);
        assert_eq!(shocked.subway, baseline.subway);
        assert_eq!(shocked.bike, baseline.bike);
    }

    #[test]
    fn weather_shock_suppresses_demand_in_its_window() {
        use crate::scenario::{Scenario, WeatherShock};
        let mut config = SimConfig::small();
        // Day 2 (minutes 1440..2880) at 20% demand.
        config.scenario = Scenario {
            weather_shock: Some(WeatherShock {
                start_min: 1440.0,
                end_min: 2880.0,
                demand_factor: 0.2,
            }),
            ..Scenario::none()
        };
        let mut rng = StdRng::seed_from_u64(12);
        let layout = CityLayout::generate(&config, &mut rng);
        let shocked = Simulator::new(config, layout).run(&mut rng);
        let baseline = small_run(12);
        let day2 = |d: &TripData| {
            d.bike
                .iter()
                .filter(|r| r.time_min >= 1440.0 && r.status == BikeStatus::PickUp)
                .count()
        };
        let (s, b) = (day2(&shocked), day2(&baseline));
        assert!(
            (s as f64) < 0.6 * b as f64,
            "storm day should lose most demand: shocked {s} vs baseline {b}"
        );
    }

    #[test]
    fn station_outage_silences_the_station() {
        use crate::scenario::{Scenario, StationOutage};
        let mut config = SimConfig::small();
        let horizon = config.total_minutes() as f64;
        config.scenario = Scenario {
            station_outage: Some(StationOutage {
                start_min: 0.0,
                end_min: horizon,
                station: 0,
            }),
            ..Scenario::none()
        };
        let mut rng = StdRng::seed_from_u64(13);
        let layout = CityLayout::generate(&config, &mut rng);
        let data = Simulator::new(config, layout).run(&mut rng);
        assert!(
            data.subway.iter().all(|r| r.station != 0),
            "an out-of-service station must produce no records"
        );
        assert!(!data.subway.is_empty(), "other stations keep running");
    }

    #[test]
    fn sensor_dropout_loses_exactly_the_periodic_records() {
        use crate::scenario::{Scenario, SensorDropout};
        let mut config = SimConfig::small();
        let horizon = config.total_minutes() as f64;
        config.scenario = Scenario {
            sensor_dropout: Some(SensorDropout {
                start_min: 0.0,
                end_min: horizon,
                drop_every: 2,
            }),
            ..Scenario::none()
        };
        let mut rng = StdRng::seed_from_u64(14);
        let layout = CityLayout::generate(&config, &mut rng);
        let data = Simulator::new(config, layout).run(&mut rng);
        let baseline = small_run(14);
        assert!(
            data.bike.iter().all(|r| r.record_id % 2 == 1),
            "every even-id bike record should have been dropped"
        );
        // Subway records are untouched; bike roughly halves.
        assert_eq!(data.subway.len(), baseline.subway.len());
        assert!(data.bike.len() * 2 <= baseline.bike.len() + 1);
    }

    #[test]
    fn event_spike_boosts_demand_near_its_centre() {
        use crate::scenario::{EventSpike, Scenario};
        let mut config = SimConfig::small();
        let centre = Cell { row: 3, col: 3 };
        let horizon = config.total_minutes() as f64;
        config.scenario = Scenario {
            event_spike: Some(EventSpike {
                start_min: 0.0,
                end_min: horizon,
                centre,
                radius: 1,
                multiplier: 5.0,
            }),
            ..Scenario::none()
        };
        let mut rng = StdRng::seed_from_u64(15);
        let layout = CityLayout::generate(&config, &mut rng);
        let spiked = Simulator::new(config, layout).run(&mut rng);
        let baseline = small_run(15);
        let near = |d: &TripData| {
            d.bike
                .iter()
                .filter(|r| r.status == BikeStatus::PickUp && r.cell.chebyshev(centre) <= 1)
                .count()
        };
        let (s, b) = (near(&spiked), near(&baseline));
        assert!(
            s > b,
            "spiked run should see more pick-ups near the event: {s} vs {b}"
        );
    }

    #[test]
    fn config_accessors() {
        let cfg = SimConfig::paper_scale();
        assert_eq!(cfg.days, 31);
        assert_eq!(cfg.subway_lines, 7);
        assert_eq!(cfg.total_minutes(), 31 * 1440);
        assert_eq!(SimConfig::default(), SimConfig::paper_scale());
    }
}
