//! Aggregation of trip records into spatio-temporal demand tensors.
//!
//! Follows the paper's preprocessing (Sec. IV-D): events are counted per grid
//! cell per 15-minute slot. The resulting tensor is `(T, F, H, W)` with the
//! four feature channels below; the prediction target is channel
//! [`F_BIKE_PICKUP`].

use bikecap_tensor::Tensor;

use crate::generate::TripData;
use crate::layout::Cell;
use crate::records::{BikeStatus, SubwayStatus};

/// Channel index of bike pick-ups (the prediction target).
pub const F_BIKE_PICKUP: usize = 0;
/// Channel index of bike drop-offs.
pub const F_BIKE_DROPOFF: usize = 1;
/// Channel index of subway boardings (upstream check-ins).
pub const F_SUBWAY_BOARD: usize = 2;
/// Channel index of subway alightings (upstream check-outs).
pub const F_SUBWAY_ALIGHT: usize = 3;
/// Number of feature channels.
pub const FEATURES: usize = 4;

/// Human-readable channel names, indexed by the `F_*` constants.
pub const FEATURE_NAMES: [&str; FEATURES] =
    ["bike_pickups", "bike_dropoffs", "subway_boardings", "subway_alightings"];

/// Why a trip batch could not be aggregated into a demand series.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateError {
    /// A record's timestamp is NaN or infinite.
    NonFiniteTime {
        /// Offending record id.
        record_id: u64,
    },
    /// A record's timestamp is negative.
    NegativeTime {
        /// Offending record id.
        record_id: u64,
        /// The timestamp.
        time_min: f64,
    },
    /// A record lands past the configured simulation horizon.
    BeyondHorizon {
        /// Offending record id.
        record_id: u64,
        /// The slot the record would land in.
        slot: usize,
        /// Number of slots the series covers.
        num_slots: usize,
    },
    /// A bike record's cell lies outside the layout grid.
    CellOutOfGrid {
        /// Offending record id.
        record_id: u64,
        /// The out-of-grid cell.
        cell: Cell,
    },
    /// A subway record references a station the layout does not have.
    UnknownStation {
        /// Offending record id.
        record_id: u64,
        /// The station index.
        station: usize,
    },
}

impl std::fmt::Display for AggregateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateError::NonFiniteTime { record_id } => {
                write!(f, "record {record_id} has a non-finite timestamp")
            }
            AggregateError::NegativeTime { record_id, time_min } => {
                write!(f, "record {record_id} has negative timestamp {time_min}")
            }
            AggregateError::BeyondHorizon {
                record_id,
                slot,
                num_slots,
            } => write!(
                f,
                "record {record_id} lands in slot {slot}, past the {num_slots}-slot horizon"
            ),
            AggregateError::CellOutOfGrid { record_id, cell } => write!(
                f,
                "record {record_id} lands in cell ({}, {}) outside the grid",
                cell.row, cell.col
            ),
            AggregateError::UnknownStation { record_id, station } => {
                write!(f, "record {record_id} references unknown station {station}")
            }
        }
    }
}

impl std::error::Error for AggregateError {}

/// A demand tensor series: counts per slot, channel and grid cell.
#[derive(Debug, Clone)]
pub struct DemandSeries {
    /// Counts, shape `(T, FEATURES, H, W)`.
    pub data: Tensor,
    /// Slot length in minutes (15 in the paper).
    pub slot_minutes: u32,
    /// Grid rows.
    pub height: usize,
    /// Grid cols.
    pub width: usize,
}

impl DemandSeries {
    /// Aggregates trip records into per-slot grid counts.
    ///
    /// # Panics
    ///
    /// Panics if `slot_minutes` is 0 or does not divide a day.
    pub fn from_trips(trips: &TripData, slot_minutes: u32) -> Self {
        assert!(slot_minutes > 0, "slot_minutes must be positive");
        assert_eq!(
            1440 % slot_minutes,
            0,
            "slot length must divide a day, got {slot_minutes}"
        );
        let (h, w) = (trips.layout.height, trips.layout.width);
        let t = (trips.config.total_minutes() / slot_minutes) as usize;
        let mut data = Tensor::zeros(&[t, FEATURES, h, w]);
        let mut bump = |slot: usize, feature: usize, cell: Cell| {
            if slot < t {
                let idx = [slot, feature, cell.row, cell.col];
                let v = data.get(&idx);
                data.set(&idx, v + 1.0);
            }
        };
        for r in &trips.bike {
            let slot = (r.time_min / slot_minutes as f64) as usize;
            let feature = match r.status {
                BikeStatus::PickUp => F_BIKE_PICKUP,
                BikeStatus::DropOff => F_BIKE_DROPOFF,
            };
            bump(slot, feature, r.cell);
        }
        for r in &trips.subway {
            let slot = (r.time_min / slot_minutes as f64) as usize;
            let feature = match r.status {
                SubwayStatus::Boarding => F_SUBWAY_BOARD,
                SubwayStatus::Disembarking => F_SUBWAY_ALIGHT,
            };
            bump(slot, feature, trips.layout.stations[r.station].cell);
        }
        DemandSeries {
            data,
            slot_minutes,
            height: h,
            width: w,
        }
    }

    /// Strict aggregation: like [`DemandSeries::from_trips`], but every
    /// record the permissive path would silently skip — or mis-place —
    /// surfaces as a typed [`AggregateError`] naming the offending record.
    /// Use this on records that did not come straight out of the simulator
    /// (file imports, live feeds).
    ///
    /// # Errors
    ///
    /// Returns the first (in record order, bike before subway) record with
    /// a non-finite or negative timestamp, a slot past the horizon, a cell
    /// outside the grid, or an unknown station index.
    ///
    /// # Panics
    ///
    /// Panics if `slot_minutes` is 0 or does not divide a day, as
    /// [`DemandSeries::from_trips`] does.
    pub fn try_from_trips(
        trips: &TripData,
        slot_minutes: u32,
    ) -> Result<Self, AggregateError> {
        assert!(slot_minutes > 0, "slot_minutes must be positive");
        assert_eq!(
            1440 % slot_minutes,
            0,
            "slot length must divide a day, got {slot_minutes}"
        );
        let (h, w) = (trips.layout.height, trips.layout.width);
        let t = (trips.config.total_minutes() / slot_minutes) as usize;
        let slot_of = |record_id: u64, time_min: f64| -> Result<usize, AggregateError> {
            if !time_min.is_finite() {
                return Err(AggregateError::NonFiniteTime { record_id });
            }
            if time_min < 0.0 {
                return Err(AggregateError::NegativeTime { record_id, time_min });
            }
            let slot = (time_min / slot_minutes as f64) as usize;
            if slot >= t {
                return Err(AggregateError::BeyondHorizon {
                    record_id,
                    slot,
                    num_slots: t,
                });
            }
            Ok(slot)
        };
        let mut data = Tensor::zeros(&[t, FEATURES, h, w]);
        for r in &trips.bike {
            let slot = slot_of(r.record_id, r.time_min)?;
            if r.cell.row >= h || r.cell.col >= w {
                return Err(AggregateError::CellOutOfGrid {
                    record_id: r.record_id,
                    cell: r.cell,
                });
            }
            let feature = match r.status {
                BikeStatus::PickUp => F_BIKE_PICKUP,
                BikeStatus::DropOff => F_BIKE_DROPOFF,
            };
            let idx = [slot, feature, r.cell.row, r.cell.col];
            let v = data.get(&idx);
            data.set(&idx, v + 1.0);
        }
        for r in &trips.subway {
            let slot = slot_of(r.record_id, r.time_min)?;
            let station = trips.layout.stations.get(r.station).ok_or(
                AggregateError::UnknownStation {
                    record_id: r.record_id,
                    station: r.station,
                },
            )?;
            let feature = match r.status {
                SubwayStatus::Boarding => F_SUBWAY_BOARD,
                SubwayStatus::Disembarking => F_SUBWAY_ALIGHT,
            };
            let idx = [slot, feature, station.cell.row, station.cell.col];
            let v = data.get(&idx);
            data.set(&idx, v + 1.0);
        }
        Ok(DemandSeries {
            data,
            slot_minutes,
            height: h,
            width: w,
        })
    }

    /// Number of time slots `T`.
    pub fn num_slots(&self) -> usize {
        self.data.shape()[0]
    }

    /// The count at `(slot, feature, cell)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn count(&self, slot: usize, feature: usize, cell: Cell) -> f32 {
        self.data.get(&[slot, feature, cell.row, cell.col])
    }

    /// Mean count of a channel across all slots and cells.
    pub fn channel_mean(&self, feature: usize) -> f32 {
        self.data
            .narrow(1, feature, 1)
            .mean()
    }
}

/// Per-slot boarding and alighting counts for one station (for the Fig. 1
/// reproduction).
pub fn station_flows(trips: &TripData, station: usize, slot_minutes: u32) -> (Vec<f32>, Vec<f32>) {
    let t = (trips.config.total_minutes() / slot_minutes) as usize;
    let mut boards = vec![0.0f32; t];
    let mut alights = vec![0.0f32; t];
    for r in trips.subway.iter().filter(|r| r.station == station) {
        let slot = (r.time_min / slot_minutes as f64) as usize;
        if slot < t {
            match r.status {
                SubwayStatus::Boarding => boards[slot] += 1.0,
                SubwayStatus::Disembarking => alights[slot] += 1.0,
            }
        }
    }
    (boards, alights)
}

/// Per-slot bike pick-up counts within `radius` cells (Chebyshev) of `cell`
/// — the paper's "bike rentals nearby station B, e.g. within 200 meters".
pub fn bike_pickups_near(
    trips: &TripData,
    cell: Cell,
    radius: usize,
    slot_minutes: u32,
) -> Vec<f32> {
    let t = (trips.config.total_minutes() / slot_minutes) as usize;
    let mut out = vec![0.0f32; t];
    for r in trips
        .bike
        .iter()
        .filter(|r| r.status == BikeStatus::PickUp && r.cell.chebyshev(cell) <= radius)
    {
        let slot = (r.time_min / slot_minutes as f64) as usize;
        if slot < t {
            out[slot] += 1.0;
        }
    }
    out
}

/// Pearson correlation between two equal-length series after shifting `b`
/// left by `lag` slots (i.e. correlating `a[t]` with `b[t + lag]`).
///
/// Returns 0 when either series is constant or the overlap is empty.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn lagged_correlation(a: &[f32], b: &[f32], lag: usize) -> f32 {
    assert_eq!(a.len(), b.len(), "series lengths differ");
    if lag >= a.len() {
        return 0.0;
    }
    let n = a.len() - lag;
    let xs = &a[..n];
    let ys = &b[lag..];
    let mx = xs.iter().sum::<f32>() / n as f32;
    let my = ys.iter().sum::<f32>() / n as f32;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{SimConfig, Simulator};
    use crate::layout::CityLayout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trips(seed: u64) -> TripData {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = SimConfig::small();
        let layout = CityLayout::generate(&config, &mut rng);
        Simulator::new(config, layout).run(&mut rng)
    }

    #[test]
    fn aggregation_conserves_record_counts() {
        let data = trips(1);
        let series = DemandSeries::from_trips(&data, 15);
        let picks = series.data.narrow(1, F_BIKE_PICKUP, 1).sum() as usize;
        let drops = series.data.narrow(1, F_BIKE_DROPOFF, 1).sum() as usize;
        let boards = series.data.narrow(1, F_SUBWAY_BOARD, 1).sum() as usize;
        let alights = series.data.narrow(1, F_SUBWAY_ALIGHT, 1).sum() as usize;
        assert_eq!(picks, data.bike_trips());
        assert_eq!(drops, data.bike_trips());
        assert_eq!(boards, data.subway_trips());
        assert_eq!(alights, data.subway_trips());
    }

    #[test]
    fn tensor_shape_matches_config() {
        let data = trips(2);
        let series = DemandSeries::from_trips(&data, 15);
        let expected_t = (data.config.days * 96) as usize;
        assert_eq!(
            series.data.shape(),
            &[expected_t, FEATURES, data.layout.height, data.layout.width]
        );
        assert_eq!(series.num_slots(), expected_t);
    }

    #[test]
    fn subway_counts_only_on_station_cells() {
        let data = trips(3);
        let series = DemandSeries::from_trips(&data, 15);
        let station_cells: std::collections::HashSet<_> =
            data.layout.stations.iter().map(|s| s.cell).collect();
        for slot in 0..series.num_slots() {
            for row in 0..series.height {
                for col in 0..series.width {
                    let cell = Cell { row, col };
                    if !station_cells.contains(&cell) {
                        assert_eq!(series.count(slot, F_SUBWAY_BOARD, cell), 0.0);
                        assert_eq!(series.count(slot, F_SUBWAY_ALIGHT, cell), 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn station_flows_match_channel_totals() {
        let data = trips(4);
        let series = DemandSeries::from_trips(&data, 15);
        let sid = data.layout.most_commercial_station().id;
        let cell = data.layout.stations[sid].cell;
        let (boards, _) = station_flows(&data, sid, 15);
        // Channel total at the station's cell >= this station's flow (other
        // stations may share the cell).
        for (slot, &b) in boards.iter().enumerate() {
            assert!(series.count(slot, F_SUBWAY_BOARD, cell) >= b);
        }
        assert!(boards.iter().sum::<f32>() > 0.0);
    }

    #[test]
    fn upstream_leads_downstream() {
        // The core phenomenon: boardings at the residential station correlate
        // with bike pick-ups near the CBD station at a positive lag, more than
        // at lag zero reversed.
        let data = trips(5);
        let lay = data.layout.clone();
        let a = lay.most_residential_station().id;
        let b = lay.most_commercial_station();
        let (boards_a, _) = station_flows(&data, a, 15);
        let picks_b = bike_pickups_near(&data, b.cell, 1, 15);
        // Find the best positive lag in 0..8 slots.
        let best = (0..8)
            .map(|lag| lagged_correlation(&boards_a, &picks_b, lag))
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(
            best > 0.3,
            "expected a clear lead-lag correlation, best was {best}"
        );
    }

    #[test]
    fn lagged_correlation_identities() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((lagged_correlation(&a, &a, 0) - 1.0).abs() < 1e-6);
        let neg: Vec<f32> = a.iter().map(|v| -v).collect();
        assert!((lagged_correlation(&a, &neg, 0) + 1.0).abs() < 1e-6);
        // A shifted copy correlates perfectly at its lag.
        let shifted = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        assert!(lagged_correlation(&a, &shifted, 1) > 0.99);
        // Constant series: defined as zero.
        let c = vec![2.0; 5];
        assert_eq!(lagged_correlation(&a, &c, 0), 0.0);
        // Lag beyond length: zero.
        assert_eq!(lagged_correlation(&a, &a, 10), 0.0);
    }

    #[test]
    fn try_from_trips_matches_permissive_path_on_clean_records() {
        let data = trips(7);
        let strict = DemandSeries::try_from_trips(&data, 15).expect("clean records");
        let permissive = DemandSeries::from_trips(&data, 15);
        assert_eq!(strict.data.as_slice(), permissive.data.as_slice());
    }

    #[test]
    fn try_from_trips_names_the_offending_record() {
        use crate::records::BikeStatus;

        let clean = trips(8);

        let mut bad_time = clean.clone();
        bad_time.bike[3].time_min = f64::NAN;
        let id = bad_time.bike[3].record_id;
        assert_eq!(
            DemandSeries::try_from_trips(&bad_time, 15).unwrap_err(),
            AggregateError::NonFiniteTime { record_id: id }
        );

        let mut negative = clean.clone();
        negative.bike[0].time_min = -1.0;
        assert!(matches!(
            DemandSeries::try_from_trips(&negative, 15).unwrap_err(),
            AggregateError::NegativeTime { .. }
        ));

        let mut late = clean.clone();
        let horizon = late.config.total_minutes() as f64;
        late.bike[1].time_min = horizon + 30.0;
        assert!(matches!(
            DemandSeries::try_from_trips(&late, 15).unwrap_err(),
            AggregateError::BeyondHorizon { .. }
        ));

        let mut off_grid = clean.clone();
        off_grid.bike[2].cell = Cell { row: 999, col: 0 };
        assert!(matches!(
            DemandSeries::try_from_trips(&off_grid, 15).unwrap_err(),
            AggregateError::CellOutOfGrid { .. }
        ));

        let mut ghost = clean.clone();
        ghost.subway[0].station = 9_999;
        assert!(matches!(
            DemandSeries::try_from_trips(&ghost, 15).unwrap_err(),
            AggregateError::UnknownStation { .. }
        ));

        // The permissive path still accepts all of these silently except the
        // unknown station (which it would panic on) — that asymmetry is the
        // point of the strict path.
        let _ = DemandSeries::from_trips(&late, 15);
        assert_eq!(
            DemandSeries::from_trips(&late, 15).data.sum(),
            DemandSeries::try_from_trips(&clean, 15).unwrap().data.sum() - 1.0,
            "permissive path silently dropped the late record"
        );
        assert!(format!("{}", AggregateError::NonFiniteTime { record_id: 5 })
            .contains("non-finite"));
        let _ = BikeStatus::PickUp; // silence unused-import lint paths
    }

    #[test]
    fn channel_mean_is_sane() {
        let data = trips(6);
        let series = DemandSeries::from_trips(&data, 15);
        let m = series.channel_mean(F_BIKE_PICKUP);
        assert!(m > 0.0 && m < 100.0, "suspicious mean pick-ups {m}");
    }
}
