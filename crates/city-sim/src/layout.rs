//! City layout: grid, land-use zones and subway network.

use rand::Rng;

use crate::generate::SimConfig;

/// A grid cell addressed by `(row, col)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    /// Row index (0 at the "north" edge).
    pub row: usize,
    /// Column index (0 at the "west" edge).
    pub col: usize,
}

impl Cell {
    /// Chebyshev (king-move) distance to another cell.
    pub fn chebyshev(&self, other: Cell) -> usize {
        self.row.abs_diff(other.row).max(self.col.abs_diff(other.col))
    }

    /// Manhattan distance to another cell.
    pub fn manhattan(&self, other: Cell) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// Flat index within an `height x width` grid.
    pub fn flat(&self, width: usize) -> usize {
        self.row * width + self.col
    }
}

/// A subway station placed on a grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    /// Stable station identifier (index into [`CityLayout::stations`]).
    pub id: usize,
    /// Display name, e.g. `"L3 S02"`.
    pub name: String,
    /// Subway line this station belongs to (primary line for transfers).
    pub line: usize,
    /// Grid cell the station occupies.
    pub cell: Cell,
}

/// The simulated city: grid extents, land-use weights and the subway network.
///
/// `residential[cell]` and `commercial[cell]` are non-negative weights whose
/// products drive origin–destination subway flows; high-`commercial` blobs are
/// the CBD, high-`residential` areas the housing districts (mirroring
/// stations A and B of the paper's Fig. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CityLayout {
    /// Grid rows (the paper's `N_g1`).
    pub height: usize,
    /// Grid columns (the paper's `N_g2`).
    pub width: usize,
    /// Residential weight per cell (row-major, length `height * width`).
    pub residential: Vec<f32>,
    /// Commercial weight per cell (row-major).
    pub commercial: Vec<f32>,
    /// All stations across all lines.
    pub stations: Vec<Station>,
    /// Per line: the station ids along the line in order.
    pub lines: Vec<Vec<usize>>,
    /// Minutes to travel between adjacent stations on a line.
    pub minutes_per_hop: f32,
}

impl CityLayout {
    /// Generates a Shenzhen-like layout from the config: one CBD blob, several
    /// residential blobs, and `config.subway_lines` lines crossing the grid
    /// through both.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 4x4 or no lines are requested.
    pub fn generate<R: Rng + ?Sized>(config: &SimConfig, rng: &mut R) -> Self {
        let (h, w) = (config.grid_height, config.grid_width);
        assert!(h >= 4 && w >= 4, "grid must be at least 4x4, got {h}x{w}");
        assert!(config.subway_lines >= 1, "need at least one subway line");

        // CBD: a blob in the south-east quadrant. Residential: 2-3 blobs in
        // the remaining quadrants.
        let cbd = Cell {
            row: h - 1 - h / 6,
            col: w - 1 - w / 6,
        };
        let blob = |centre: Cell, spread: f32, cell: Cell| -> f32 {
            let d2 = (centre.row as f32 - cell.row as f32).powi(2)
                + (centre.col as f32 - cell.col as f32).powi(2);
            (-d2 / (2.0 * spread * spread)).exp()
        };
        let res_centres = [
            Cell { row: h / 6, col: w / 6 },
            Cell { row: h / 6, col: w - 1 - w / 4 },
            Cell { row: h - 1 - h / 4, col: w / 6 },
        ];
        let spread = (h.min(w) as f32) / 4.0;
        let mut residential = Vec::with_capacity(h * w);
        let mut commercial = Vec::with_capacity(h * w);
        for row in 0..h {
            for col in 0..w {
                let cell = Cell { row, col };
                let r: f32 = res_centres.iter().map(|&c| blob(c, spread, cell)).sum::<f32>()
                    + rng.gen_range(0.0..0.08);
                let m = blob(cbd, spread * 0.8, cell) + rng.gen_range(0.0..0.05);
                residential.push(r);
                commercial.push(m);
            }
        }

        // Lines: straight-ish polylines from a residential centre to the CBD,
        // with stations every `station_stride` cells along the path.
        let mut stations: Vec<Station> = Vec::new();
        let mut lines: Vec<Vec<usize>> = Vec::new();
        for line_idx in 0..config.subway_lines {
            let start = res_centres[line_idx % res_centres.len()];
            let jitter_row = (line_idx / res_centres.len()) % 2;
            let start = Cell {
                row: (start.row + jitter_row).min(h - 1),
                col: (start.col + line_idx % 2).min(w - 1),
            };
            let path = Self::l_shaped_path(start, cbd);
            let mut line_station_ids = Vec::new();
            for (i, &cell) in path.iter().enumerate() {
                if i % config.station_stride == 0 || i + 1 == path.len() {
                    let id = stations.len();
                    stations.push(Station {
                        id,
                        name: format!("L{} S{:02}", line_idx + 1, line_station_ids.len() + 1),
                        line: line_idx,
                        cell,
                    });
                    line_station_ids.push(id);
                }
            }
            lines.push(line_station_ids);
        }

        CityLayout {
            height: h,
            width: w,
            residential,
            commercial,
            stations,
            lines,
            minutes_per_hop: config.minutes_per_hop,
        }
    }

    /// An L-shaped lattice path from `a` to `b` (rows first, then columns).
    fn l_shaped_path(a: Cell, b: Cell) -> Vec<Cell> {
        let mut path = vec![a];
        let mut cur = a;
        while cur.row != b.row {
            cur.row = if cur.row < b.row { cur.row + 1 } else { cur.row - 1 };
            path.push(cur);
        }
        while cur.col != b.col {
            cur.col = if cur.col < b.col { cur.col + 1 } else { cur.col - 1 };
            path.push(cur);
        }
        path
    }

    /// Number of grid cells.
    pub fn num_cells(&self) -> usize {
        self.height * self.width
    }

    /// Residential weight of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of the grid.
    pub fn residential_weight(&self, cell: Cell) -> f32 {
        self.residential[cell.flat(self.width)]
    }

    /// Commercial weight of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of the grid.
    pub fn commercial_weight(&self, cell: Cell) -> f32 {
        self.commercial[cell.flat(self.width)]
    }

    /// In-network travel time between two stations, in minutes: hop count
    /// along the line for same-line pairs, otherwise a grid-distance estimate
    /// plus a transfer penalty (the simulator does not route multi-leg
    /// journeys explicitly).
    pub fn travel_minutes(&self, from: usize, to: usize) -> f32 {
        let sa = &self.stations[from];
        let sb = &self.stations[to];
        if sa.line == sb.line {
            let line = &self.lines[sa.line];
            let ia = line.iter().position(|&s| s == from).unwrap_or(0);
            let ib = line.iter().position(|&s| s == to).unwrap_or(0);
            ia.abs_diff(ib) as f32 * self.minutes_per_hop * 2.0
        } else {
            sa.cell.manhattan(sb.cell) as f32 * self.minutes_per_hop + 6.0
        }
    }

    /// The most "residential" station (the analogue of the paper's station A).
    pub fn most_residential_station(&self) -> &Station {
        self.stations
            .iter()
            .max_by(|a, b| {
                self.residential_weight(a.cell)
                    .total_cmp(&self.residential_weight(b.cell))
            })
            .expect("layout has at least one station")
    }

    /// The most "commercial" station (the analogue of the paper's station B).
    pub fn most_commercial_station(&self) -> &Station {
        self.stations
            .iter()
            .max_by(|a, b| {
                self.commercial_weight(a.cell)
                    .total_cmp(&self.commercial_weight(b.cell))
            })
            .expect("layout has at least one station")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layout() -> CityLayout {
        let mut rng = StdRng::seed_from_u64(3);
        CityLayout::generate(&SimConfig::small(), &mut rng)
    }

    #[test]
    fn generate_produces_requested_structure() {
        let l = layout();
        let cfg = SimConfig::small();
        assert_eq!(l.height, cfg.grid_height);
        assert_eq!(l.width, cfg.grid_width);
        assert_eq!(l.lines.len(), cfg.subway_lines);
        assert_eq!(l.residential.len(), l.num_cells());
        assert_eq!(l.commercial.len(), l.num_cells());
        assert!(l.stations.len() >= cfg.subway_lines * 2);
    }

    #[test]
    fn stations_lie_on_grid_and_lines_are_consistent() {
        let l = layout();
        for s in &l.stations {
            assert!(s.cell.row < l.height && s.cell.col < l.width);
            assert!(l.lines[s.line].contains(&s.id));
        }
        for (li, line) in l.lines.iter().enumerate() {
            for &sid in line {
                assert_eq!(l.stations[sid].line, li);
            }
        }
    }

    #[test]
    fn cbd_and_residential_areas_are_distinct() {
        let l = layout();
        let a = l.most_residential_station();
        let b = l.most_commercial_station();
        assert_ne!(a.cell, b.cell, "zones must separate station A and B");
        assert!(l.residential_weight(a.cell) > l.residential_weight(b.cell));
        assert!(l.commercial_weight(b.cell) > l.commercial_weight(a.cell));
    }

    #[test]
    fn same_line_travel_scales_with_hops() {
        let l = layout();
        let line = &l.lines[0];
        if line.len() >= 3 {
            let t1 = l.travel_minutes(line[0], line[1]);
            let t2 = l.travel_minutes(line[0], line[2]);
            assert!(t2 > t1, "farther stations must take longer");
        }
        // Symmetry.
        let t_ab = l.travel_minutes(line[0], *line.last().unwrap());
        let t_ba = l.travel_minutes(*line.last().unwrap(), line[0]);
        assert_eq!(t_ab, t_ba);
    }

    #[test]
    fn cross_line_travel_includes_transfer_penalty() {
        let l = layout();
        if l.lines.len() >= 2 {
            let a = l.lines[0][0];
            let b = l.lines[1][0];
            assert!(l.travel_minutes(a, b) >= 6.0);
        }
    }

    #[test]
    fn cell_distance_helpers() {
        let a = Cell { row: 1, col: 2 };
        let b = Cell { row: 4, col: 0 };
        assert_eq!(a.chebyshev(b), 3);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(a.flat(8), 10);
    }

    #[test]
    fn l_shaped_path_connects_endpoints() {
        let path = CityLayout::l_shaped_path(Cell { row: 0, col: 0 }, Cell { row: 2, col: 3 });
        assert_eq!(path.first(), Some(&Cell { row: 0, col: 0 }));
        assert_eq!(path.last(), Some(&Cell { row: 2, col: 3 }));
        // Consecutive cells are lattice neighbours.
        for pair in path.windows(2) {
            assert_eq!(pair[0].manhattan(pair[1]), 1);
        }
    }
}
