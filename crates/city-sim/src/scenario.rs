//! Regime-shift scenario knobs for the simulator.
//!
//! A [`Scenario`] superimposes a *non-stationary* disturbance on the
//! otherwise stationary generative model — the ground truth a live
//! adaptation loop must detect and absorb. Four disturbances are modelled,
//! each over an absolute minute window `[start_min, end_min)`:
//!
//! * [`WeatherShock`] — a city-wide demand multiplier (a storm at `0.3`,
//!   a heat wave at `1.4`).
//! * [`EventSpike`] — a localised multiplier around a centre cell (a
//!   stadium event), the scheduled twin of the random per-day events the
//!   simulator already draws.
//! * [`StationOutage`] — one subway station stops serving entirely;
//!   upstream flows vanish and so do its transfer bike trips.
//! * [`SensorDropout`] — every `drop_every`-th bike record inside the
//!   window is lost after generation (a flaky feed), leaving unpaired
//!   pick-ups/drop-offs exactly as a real telemetry gap would.
//!
//! Every knob is a pure function of the record/slot being generated — a
//! disabled scenario ([`Scenario::none`], the default) consumes **zero**
//! RNG draws and leaves the simulation bitwise identical to a build
//! without this module. An enabled scenario perturbs the Poisson rates,
//! which legitimately shifts the RNG stream from the disturbance onward.

use crate::layout::Cell;

/// A city-wide demand multiplier over a time window (weather).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherShock {
    /// Window start, absolute simulation minutes (inclusive).
    pub start_min: f64,
    /// Window end, absolute simulation minutes (exclusive).
    pub end_min: f64,
    /// Demand multiplier inside the window (`< 1` suppresses, `> 1` boosts).
    pub demand_factor: f64,
}

/// A localised demand multiplier around a centre cell (scheduled event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventSpike {
    /// Window start, absolute simulation minutes (inclusive).
    pub start_min: f64,
    /// Window end, absolute simulation minutes (exclusive).
    pub end_min: f64,
    /// Centre of the affected area.
    pub centre: Cell,
    /// Chebyshev radius of the affected area, in cells.
    pub radius: usize,
    /// Demand multiplier inside the area and window.
    pub multiplier: f64,
}

/// One subway station out of service over a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationOutage {
    /// Window start, absolute simulation minutes (inclusive).
    pub start_min: f64,
    /// Window end, absolute simulation minutes (exclusive).
    pub end_min: f64,
    /// Index of the station (into `CityLayout::stations`).
    pub station: usize,
}

/// Deterministic loss of bike records over a time window (sensor fault).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorDropout {
    /// Window start, absolute simulation minutes (inclusive).
    pub start_min: f64,
    /// Window end, absolute simulation minutes (exclusive).
    pub end_min: f64,
    /// Drop records whose `record_id % drop_every == 0`; must be `> 0`.
    pub drop_every: u64,
}

/// The scenario attached to a simulation run; all knobs default to off.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Scenario {
    /// City-wide weather multiplier, if any.
    pub weather_shock: Option<WeatherShock>,
    /// Scheduled localised event, if any.
    pub event_spike: Option<EventSpike>,
    /// Subway station outage, if any.
    pub station_outage: Option<StationOutage>,
    /// Bike sensor dropout, if any.
    pub sensor_dropout: Option<SensorDropout>,
}

fn in_window(t_min: f64, start: f64, end: f64) -> bool {
    t_min >= start && t_min < end
}

impl Scenario {
    /// The empty scenario: every knob off, simulation unperturbed.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no knob is active.
    pub fn is_none(&self) -> bool {
        self.weather_shock.is_none()
            && self.event_spike.is_none()
            && self.station_outage.is_none()
            && self.sensor_dropout.is_none()
    }

    /// The combined demand multiplier at `(t_min, cell)` — `1.0` when no
    /// knob covers the point.
    pub fn demand_factor(&self, t_min: f64, cell: Cell) -> f64 {
        let mut f = 1.0;
        if let Some(w) = self.weather_shock {
            if in_window(t_min, w.start_min, w.end_min) {
                f *= w.demand_factor;
            }
        }
        if let Some(e) = self.event_spike {
            if in_window(t_min, e.start_min, e.end_min) && cell.chebyshev(e.centre) <= e.radius {
                f *= e.multiplier;
            }
        }
        f
    }

    /// True when `station` is out of service at `t_min`.
    pub fn station_blocked(&self, t_min: f64, station: usize) -> bool {
        matches!(
            self.station_outage,
            Some(o) if o.station == station && in_window(t_min, o.start_min, o.end_min)
        )
    }

    /// True when a bike record generated at `t_min` with `record_id` is
    /// lost to sensor dropout.
    pub fn drops_bike_record(&self, t_min: f64, record_id: u64) -> bool {
        matches!(
            self.sensor_dropout,
            Some(d) if d.drop_every > 0
                && in_window(t_min, d.start_min, d.end_min)
                && record_id % d.drop_every == 0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CELL: Cell = Cell { row: 2, col: 2 };

    #[test]
    fn empty_scenario_is_neutral() {
        let s = Scenario::none();
        assert!(s.is_none());
        assert_eq!(s.demand_factor(100.0, CELL), 1.0);
        assert!(!s.station_blocked(100.0, 0));
        assert!(!s.drops_bike_record(100.0, 0));
    }

    #[test]
    fn weather_shock_applies_only_inside_its_window() {
        let s = Scenario {
            weather_shock: Some(WeatherShock {
                start_min: 60.0,
                end_min: 120.0,
                demand_factor: 0.25,
            }),
            ..Scenario::none()
        };
        assert!(!s.is_none());
        assert_eq!(s.demand_factor(59.9, CELL), 1.0);
        assert_eq!(s.demand_factor(60.0, CELL), 0.25);
        assert_eq!(s.demand_factor(119.9, CELL), 0.25);
        assert_eq!(s.demand_factor(120.0, CELL), 1.0);
    }

    #[test]
    fn event_spike_is_localised_and_composes_with_weather() {
        let s = Scenario {
            weather_shock: Some(WeatherShock {
                start_min: 0.0,
                end_min: 1000.0,
                demand_factor: 0.5,
            }),
            event_spike: Some(EventSpike {
                start_min: 0.0,
                end_min: 1000.0,
                centre: CELL,
                radius: 1,
                multiplier: 3.0,
            }),
            ..Scenario::none()
        };
        // Inside the event radius both factors multiply.
        assert_eq!(s.demand_factor(10.0, Cell { row: 3, col: 3 }), 1.5);
        // Outside the radius only the weather applies.
        assert_eq!(s.demand_factor(10.0, Cell { row: 5, col: 5 }), 0.5);
    }

    #[test]
    fn outage_blocks_exactly_one_station() {
        let s = Scenario {
            station_outage: Some(StationOutage {
                start_min: 0.0,
                end_min: 500.0,
                station: 3,
            }),
            ..Scenario::none()
        };
        assert!(s.station_blocked(0.0, 3));
        assert!(!s.station_blocked(0.0, 2));
        assert!(!s.station_blocked(500.0, 3));
    }

    #[test]
    fn dropout_is_periodic_within_the_window() {
        let s = Scenario {
            sensor_dropout: Some(SensorDropout {
                start_min: 0.0,
                end_min: 100.0,
                drop_every: 3,
            }),
            ..Scenario::none()
        };
        assert!(s.drops_bike_record(50.0, 0));
        assert!(!s.drops_bike_record(50.0, 1));
        assert!(s.drops_bike_record(50.0, 3));
        assert!(!s.drops_bike_record(100.0, 3)); // window is half-open
    }
}
