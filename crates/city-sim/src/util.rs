//! Small numeric utilities for the simulator.

use rand::Rng;

/// Samples a Poisson-distributed count with mean `lambda`.
///
/// Uses Knuth's product method for small means and a rounded normal
/// approximation above 30, where the relative error is negligible for our
/// trip-count purposes.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = lambda + lambda.sqrt() * z;
        return v.round().max(0.0) as u32;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0f64..1.0);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            // Defensive bound; unreachable for lambda <= 30.
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn poisson_small_lambda_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 3.5;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        assert!((var - lambda).abs() < 0.25, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_normal_branch() {
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 100.0;
        let n = 5_000;
        let mean = (0..n).map(|_| poisson(&mut rng, lambda) as f64).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
    }
}
