//! Station-level transfer-time estimation — the paper's second future-work
//! item: "a self-supervised online framework that leverages passengers
//! check-ins in upstream transportation modes to estimate average transfer
//! time to different downstream transportation modes".
//!
//! The estimator is self-supervised in the paper's sense: it needs no labels,
//! only the two event streams. Each bike pick-up near a station is matched to
//! the closest *preceding* subway alighting at that station within a time
//! window; the matched gaps estimate the transfer-time distribution.

use crate::generate::TripData;
use crate::records::{BikeStatus, SubwayStatus};

/// Estimated subway→bike transfer time at one station.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferEstimate {
    /// Station id (index into the layout's station list).
    pub station: usize,
    /// Mean matched gap, minutes.
    pub mean_minutes: f64,
    /// Median matched gap, minutes.
    pub median_minutes: f64,
    /// Number of matched (alighting, pick-up) pairs.
    pub samples: usize,
}

/// Estimates the subway→bike transfer time for every station.
///
/// `radius` is the Chebyshev cell radius counted as "near the station"
/// (the paper's 200 m ≈ radius 0–1 on a 500 m grid); `max_window_min` caps
/// how long after an alighting a pick-up can still be attributed to it.
/// Stations with no matches are omitted.
///
/// # Panics
///
/// Panics if `max_window_min` is not positive.
pub fn estimate_transfer_times(
    trips: &TripData,
    radius: usize,
    max_window_min: f64,
) -> Vec<TransferEstimate> {
    assert!(max_window_min > 0.0, "matching window must be positive");
    let mut out = Vec::new();
    for station in &trips.layout.stations {
        // Alighting times at this station (records are time-ordered).
        let alights: Vec<f64> = trips
            .subway
            .iter()
            .filter(|r| r.station == station.id && r.status == SubwayStatus::Disembarking)
            .map(|r| r.time_min)
            .collect();
        if alights.is_empty() {
            continue;
        }
        let mut gaps: Vec<f64> = Vec::new();
        for r in trips
            .bike
            .iter()
            .filter(|r| r.status == BikeStatus::PickUp && r.cell.chebyshev(station.cell) <= radius)
        {
            // Closest preceding alighting via binary search.
            let idx = alights.partition_point(|&t| t <= r.time_min);
            if idx == 0 {
                continue;
            }
            let gap = r.time_min - alights[idx - 1];
            if gap <= max_window_min {
                gaps.push(gap);
            }
        }
        if gaps.is_empty() {
            continue;
        }
        gaps.sort_by(f64::total_cmp);
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let median = gaps[gaps.len() / 2];
        out.push(TransferEstimate {
            station: station.id,
            mean_minutes: mean,
            median_minutes: median,
            samples: gaps.len(),
        });
    }
    out
}

/// Aggregates per-station estimates into a single network-wide mean,
/// weighted by sample counts. Returns `None` when no station had matches.
pub fn network_mean_transfer_minutes(estimates: &[TransferEstimate]) -> Option<f64> {
    let total: usize = estimates.iter().map(|e| e.samples).sum();
    if total == 0 {
        return None;
    }
    Some(
        estimates
            .iter()
            .map(|e| e.mean_minutes * e.samples as f64)
            .sum::<f64>()
            / total as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{SimConfig, Simulator};
    use crate::layout::CityLayout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trips(transfer_lag: f64, background: f64) -> TripData {
        let mut rng = StdRng::seed_from_u64(17);
        let mut config = SimConfig::small();
        config.days = 3;
        config.transfer_lag_mean_min = transfer_lag;
        config.bike_background_rate = background;
        let layout = CityLayout::generate(&config, &mut rng);
        Simulator::new(config, layout).run(&mut rng)
    }

    #[test]
    fn estimates_recover_the_simulated_lag_scale() {
        // With no background bike noise, every pick-up near a station is a
        // genuine transfer: the simulator draws lags uniform in
        // [0.5, 2.0) * mean, so the true average is 1.25 * mean = 5 minutes.
        let data = trips(4.0, 0.0);
        let estimates = estimate_transfer_times(&data, 1, 20.0);
        assert!(!estimates.is_empty());
        let mean = network_mean_transfer_minutes(&estimates).unwrap();
        assert!(
            (2.0..9.0).contains(&mean),
            "estimated transfer {mean} min, expected near 5"
        );
    }

    #[test]
    fn longer_simulated_lags_produce_larger_estimates() {
        let short = trips(2.0, 0.0);
        let long = trips(8.0, 0.0);
        let m_short =
            network_mean_transfer_minutes(&estimate_transfer_times(&short, 1, 25.0)).unwrap();
        let m_long =
            network_mean_transfer_minutes(&estimate_transfer_times(&long, 1, 25.0)).unwrap();
        assert!(
            m_long > m_short,
            "lag ordering should be recovered: {m_short} vs {m_long}"
        );
    }

    #[test]
    fn estimates_report_sample_counts_and_medians() {
        let data = trips(4.0, 0.0);
        for e in estimate_transfer_times(&data, 1, 20.0) {
            assert!(e.samples > 0);
            assert!(e.median_minutes >= 0.0 && e.median_minutes <= 20.0);
            assert!(e.mean_minutes >= 0.0 && e.mean_minutes <= 20.0);
        }
    }

    #[test]
    fn empty_matches_yield_none() {
        assert_eq!(network_mean_transfer_minutes(&[]), None);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_nonpositive_window() {
        let data = trips(4.0, 0.0);
        let _ = estimate_transfer_times(&data, 1, 0.0);
    }
}
