//! Simulator calibration report: generation throughput, demand magnitudes
//! and the upstream→downstream lead-lag structure of the default
//! (paper-scale) configuration.
//!
//! Useful when tuning `SimConfig` so that per-cell demand magnitudes match
//! the error scales the paper reports.
//!
//! ```text
//! cargo run -p bikecap-city-sim --release --example calibrate
//! ```

use bikecap_city_sim::aggregate::{
    bike_pickups_near, lagged_correlation, station_flows, DemandSeries, FEATURE_NAMES,
};
use bikecap_city_sim::generate::{SimConfig, Simulator};
use bikecap_city_sim::layout::CityLayout;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let t0 = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(0);
    let config = SimConfig::paper_scale();
    let layout = CityLayout::generate(&config, &mut rng);
    println!("stations: {}", layout.stations.len());
    let trips = Simulator::new(config, layout).run(&mut rng);
    println!("generation time: {:?}", t0.elapsed());
    println!(
        "subway trips: {}, bike trips: {}",
        trips.subway_trips(),
        trips.bike_trips()
    );

    let series = DemandSeries::from_trips(&trips, 15);
    println!("slots: {}", series.num_slots());
    for (f, name) in FEATURE_NAMES.iter().enumerate() {
        println!("channel {f} ({name}): mean {:.3} per cell-slot", series.channel_mean(f));
    }
    println!(
        "max pick-ups in one cell-slot: {}",
        series.data.narrow(1, 0, 1).max_value()
    );

    let a = trips.layout.most_residential_station().id;
    let b = trips.layout.most_commercial_station().clone();
    let (boards_a, _) = station_flows(&trips, a, 15);
    let picks_b = bike_pickups_near(&trips, b.cell, 1, 15);
    println!("\nlead-lag: boardings(residential A) → bike pick-ups(CBD B):");
    for lag in 0..8 {
        println!(
            "  lag {:>3} min: corr {:.3}",
            lag * 15,
            lagged_correlation(&boards_a, &picks_b, lag)
        );
    }
}
