//! Property-based tests of the simulator's invariants across random
//! configurations.

use bikecap_city_sim::aggregate::{DemandSeries, F_BIKE_DROPOFF, F_BIKE_PICKUP};
use bikecap_city_sim::generate::{SimConfig, Simulator};
use bikecap_city_sim::layout::CityLayout;
use bikecap_city_sim::{ForecastDataset, Normalizer, Split};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_config() -> impl Strategy<Value = (SimConfig, u64)> {
    (
        6usize..9,      // grid height
        6usize..9,      // grid width
        1usize..4,      // lines
        0.02f64..0.15,  // od scale
        0.0f64..0.8,    // transfer prob
        0u64..1000,     // seed
    )
        .prop_map(|(h, w, lines, od, transfer, seed)| {
            let mut cfg = SimConfig::small();
            cfg.days = 3;
            cfg.grid_height = h;
            cfg.grid_width = w;
            cfg.subway_lines = lines;
            cfg.od_scale = od;
            cfg.bike_transfer_prob = transfer;
            (cfg, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Trips always pair up and stay inside the simulation horizon.
    #[test]
    fn trips_pair_and_respect_horizon((cfg, seed) in random_config()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = CityLayout::generate(&cfg, &mut rng);
        let trips = Simulator::new(cfg.clone(), layout).run(&mut rng);
        prop_assert_eq!(trips.subway.len() % 2, 0);
        prop_assert_eq!(trips.bike.len() % 2, 0);
        let horizon = cfg.total_minutes() as f64;
        prop_assert!(trips.subway.iter().all(|r| r.time_min >= 0.0 && r.time_min < horizon));
        prop_assert!(trips.bike.iter().all(|r| r.time_min >= 0.0 && r.time_min < horizon));
    }

    /// Aggregation conserves every record exactly.
    #[test]
    fn aggregation_conserves_counts((cfg, seed) in random_config()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = CityLayout::generate(&cfg, &mut rng);
        let trips = Simulator::new(cfg, layout).run(&mut rng);
        let series = DemandSeries::from_trips(&trips, 15);
        let picks = series.data.narrow(1, F_BIKE_PICKUP, 1).sum() as usize;
        let drops = series.data.narrow(1, F_BIKE_DROPOFF, 1).sum() as usize;
        prop_assert_eq!(picks, trips.bike_trips());
        prop_assert_eq!(drops, trips.bike_trips());
    }

    /// More bike-transfer propensity never *reduces* bike trips (same seed).
    #[test]
    fn transfer_probability_is_monotone(seed in 0u64..200) {
        let make = |p: f64| {
            let mut cfg = SimConfig::small();
            cfg.days = 2;
            cfg.bike_transfer_prob = p;
            cfg.bike_background_rate = 0.0;
            let mut rng = StdRng::seed_from_u64(seed);
            let layout = CityLayout::generate(&cfg, &mut rng);
            Simulator::new(cfg, layout).run(&mut rng).bike_trips()
        };
        // Not strictly monotone per-seed (different random streams), but the
        // extremes must order correctly.
        prop_assert_eq!(make(0.0), 0);
        prop_assert!(make(0.9) > 0);
    }

    /// Normalisation into [0,1] round-trips on the fitted range.
    #[test]
    fn normalizer_roundtrip((cfg, seed) in random_config()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = CityLayout::generate(&cfg, &mut rng);
        let trips = Simulator::new(cfg, layout).run(&mut rng);
        let series = DemandSeries::from_trips(&trips, 15);
        let norm = Normalizer::fit(&series, 0..series.num_slots());
        let scaled = norm.normalize(&series.data);
        prop_assert!(scaled.min_value() >= 0.0);
        prop_assert!(scaled.max_value() <= 1.0 + 1e-6);
        let back = norm.denormalize_channel(&scaled.narrow(1, F_BIKE_PICKUP, 1), F_BIKE_PICKUP);
        let orig = series.data.narrow(1, F_BIKE_PICKUP, 1);
        for (a, b) in back.as_slice().iter().zip(orig.as_slice()) {
            prop_assert!((a - b).abs() < 1e-2);
        }
    }

    /// Window splits never overlap and every window fits its segment.
    #[test]
    fn windows_stay_in_their_segment((cfg, seed) in random_config(), h in 2usize..6, p in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layout = CityLayout::generate(&cfg, &mut rng);
        let trips = Simulator::new(cfg, layout).run(&mut rng);
        let series = DemandSeries::from_trips(&trips, 15);
        let ds = ForecastDataset::new(&series, h, p);
        let t = series.num_slots();
        for &a in &ds.anchors(Split::Train) {
            prop_assert!(a + p < t * 6 / 10);
        }
        for &a in &ds.anchors(Split::Test) {
            prop_assert!(a + 1 >= h && a + 1 - h >= t * 8 / 10);
        }
    }
}
