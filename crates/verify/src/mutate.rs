//! Seeded single-field plan corruptions: proof that the verifier rejects
//! broken plans, not merely accepts good ones.
//!
//! Each mutation class models a realistic planner bug:
//!
//! * [`MutationClass::OffsetSwap`] — two slabs of different sizes trade
//!   places in the packing, the classic aliasing bug a free-list size-key
//!   mixup would produce;
//! * [`MutationClass::DroppedRelease`] — one free-list release never
//!   happens, the leak a missed `release()` call would produce;
//! * [`MutationClass::ShrunkExtent`] — a slab is allocated smaller than
//!   the extents written into it, the overrun a stale shape would produce.
//!
//! All randomness flows from a splitmix64 stream over the caller's seed, so
//! a red CI seed reproduces locally with the same number.

use bikecap_ir::PlanView;

use crate::{verify_view, Report};

/// The kind of single-field corruption applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationClass {
    OffsetSwap,
    DroppedRelease,
    ShrunkExtent,
}

/// Every class, in harness order.
pub const ALL_CLASSES: [MutationClass; 3] = [
    MutationClass::OffsetSwap,
    MutationClass::DroppedRelease,
    MutationClass::ShrunkExtent,
];

impl MutationClass {
    /// Stable lower-kebab name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MutationClass::OffsetSwap => "offset-swap",
            MutationClass::DroppedRelease => "dropped-release",
            MutationClass::ShrunkExtent => "shrunk-extent",
        }
    }
}

/// A corruption that was applied to a view.
#[derive(Debug, Clone)]
pub struct Mutation {
    pub class: MutationClass,
    /// Human-readable description of the exact field edit.
    pub detail: String,
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.class.name(), self.detail)
    }
}

/// Applies one seeded corruption of `class` to a copy of `view`.
///
/// Returns `None` when the class does not apply (e.g. a single-step plan
/// records no releases); the harness skips inapplicable classes rather
/// than counting them as accepted corruptions.
pub fn corrupt(view: &PlanView, class: MutationClass, seed: u64) -> Option<(Mutation, PlanView)> {
    let mut rng = Splitmix::new(seed ^ (class as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut mutated = view.clone();
    let mutation = match class {
        MutationClass::OffsetSwap => {
            // Swapping equal-length slabs is a no-op in a tight packing, so
            // only pairs with differing lengths qualify.
            let mut pairs = Vec::new();
            for i in 0..view.slabs.len() {
                for j in i + 1..view.slabs.len() {
                    if view.slabs[i].len != view.slabs[j].len {
                        pairs.push((i, j));
                    }
                }
            }
            let &(i, j) = pairs.get(rng.below(pairs.len())?)?;
            let (oi, oj) = (mutated.slabs[i].offset, mutated.slabs[j].offset);
            mutated.slabs[i].offset = oj;
            mutated.slabs[j].offset = oi;
            Mutation {
                class,
                detail: format!("swapped offsets of slabs {i} (len {}) and {j} (len {})",
                    view.slabs[i].len, view.slabs[j].len),
            }
        }
        MutationClass::DroppedRelease => {
            let idx = rng.below(view.releases.len())?;
            let (free_from, slot) = mutated.releases.remove(idx);
            Mutation {
                class,
                detail: format!("dropped release of slot {slot} (reusable from step {free_from})"),
            }
        }
        MutationClass::ShrunkExtent => {
            let candidates: Vec<usize> = (0..view.slabs.len())
                .filter(|&i| view.slabs[i].len > 0)
                .collect();
            let &slot = candidates.get(rng.below(candidates.len())?)?;
            let old = mutated.slabs[slot].len;
            let new = (rng.next() as usize) % old;
            mutated.slabs[slot].len = new;
            Mutation {
                class,
                detail: format!("shrank slab {slot} allocation from {old} to {new}"),
            }
        }
    };
    Some((mutation, mutated))
}

/// One harness result: the mutation applied and the verifier's reaction.
#[derive(Debug, Clone)]
pub struct Outcome {
    pub mutation: Mutation,
    /// True when the verifier reported at least one violation (the only
    /// acceptable answer for a corrupted plan).
    pub rejected: bool,
    pub report: Report,
}

/// Runs every applicable mutation class once against `view` under `seed`.
///
/// The clean view must verify clean beforehand (asserted by callers, not
/// here, so a failing plan surfaces as its own diagnosis rather than a
/// mutation artifact).
pub fn exercise(view: &PlanView, seed: u64) -> Vec<Outcome> {
    ALL_CLASSES
        .iter()
        .filter_map(|&class| {
            let (mutation, mutated) = corrupt(view, class, seed)?;
            let report = verify_view(&mutated);
            Some(Outcome {
                mutation,
                rejected: !report.is_clean(),
                report,
            })
        })
        .collect()
}

/// splitmix64: tiny, dependency-free, full-period seeded stream.
struct Splitmix {
    state: u64,
}

impl Splitmix {
    fn new(seed: u64) -> Self {
        Splitmix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish index below `n`; `None` when `n == 0`.
    fn below(&mut self, n: usize) -> Option<usize> {
        if n == 0 {
            None
        } else {
            Some((self.next() % n as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use bikecap_autograd::Tape;
    use bikecap_ir::{CompileOptions, Graph, ModelPlan};
    use bikecap_tensor::conv::Conv3dSpec;
    use bikecap_tensor::Tensor;

    use super::*;

    fn plan() -> ModelPlan {
        let mut tape = Tape::traced();
        let x = tape.constant(Tensor::zeros(&[1, 2, 2, 4, 4]));
        let w = tape.constant(Tensor::full(&[3, 2, 3, 3, 3], 0.1));
        let c = tape.conv3d(x, w, Conv3dSpec::padded(1, 1, 1));
        let r = tape.relu(c);
        let s = tape.squash(r, 1);
        let graph = Graph::from_tape(&tape, x, s).unwrap();
        ModelPlan::compile(graph, &CompileOptions::default()).unwrap()
    }

    #[test]
    fn every_class_applies_and_is_rejected() {
        let view = plan().view();
        assert!(verify_view(&view).is_clean());
        for seed in 0..16 {
            let outcomes = exercise(&view, seed);
            assert_eq!(outcomes.len(), ALL_CLASSES.len(), "seed {seed}");
            for o in outcomes {
                assert!(
                    o.rejected,
                    "seed {seed}: {} escaped the verifier ({})",
                    o.mutation.class.name(),
                    o.mutation.detail
                );
            }
        }
    }

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let view = plan().view();
        for &class in &ALL_CLASSES {
            let a = corrupt(&view, class, 7).map(|(m, _)| m.detail);
            let b = corrupt(&view, class, 7).map(|(m, _)| m.detail);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn inapplicable_classes_are_skipped_not_accepted() {
        // A single-step plan records no releases.
        let mut tape = Tape::traced();
        let x = tape.constant(Tensor::zeros(&[4]));
        let y = tape.add_scalar(x, 1.0);
        let graph = Graph::from_tape(&tape, x, y).unwrap();
        let plan = ModelPlan::compile(graph, &CompileOptions::default()).unwrap();
        let view = plan.view();
        assert!(corrupt(&view, MutationClass::DroppedRelease, 0).is_none());
    }
}
