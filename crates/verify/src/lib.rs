//! Static verifier for compiled BikeCAP plans.
//!
//! The planner in bikecap-ir *constructs* its invariants by careful code:
//! output slabs are claimed before operands are released, `Reshape` only
//! transfers refcounts, `Input`/`Const` slabs are never recycled, and every
//! baked extent matches the exact-size slab it targets. ROADMAP items 1
//! (SIMD kernels) and 3 (quantized blocks) are about to make the cost of a
//! silent aliasing bug much higher, so this crate *proves* those properties
//! per plan instead of trusting the construction:
//!
//! * **slab disjointness** ([`Invariant::SlabOverlap`]) — no two
//!   simultaneously-live buffers overlap: a spatial interval sweep over the
//!   canonical packing, plus a temporal replay that rejects any write into
//!   a slab whose previous value still has pending readers;
//! * **refcount balance** ([`Invariant::RefcountBalance`]) — replaying the
//!   planner's recorded free-list schedule, every working slab's consumer
//!   count reaches exactly zero (released exactly once per occupation, no
//!   use-after-release, no reuse-before-release), and `Input`/`Const`
//!   slabs are never recycled;
//! * **bounds** ([`Invariant::Bounds`]) — every step's read/write extent
//!   fits (and, per the exact-size free-list contract, equals) its slab
//!   allocation for the staged shape;
//! * **schedule validity** ([`Invariant::Schedule`]) — topological order is
//!   respected (no read before the producing write), the output is written
//!   and still live at the end, and no step writes an input/const slab.
//!
//! Verification happens on [`PlanView`] — a plain-data projection with
//! extents recomputed from the baked dispatch geometry — so the verifier
//! shares no construction logic with the planner it checks. The
//! [`mutate`] module corrupts valid views with seeded single-field edits
//! (offset swap, dropped release, shrunk extent) to prove the verifier
//! actually rejects broken plans, not just accepts good ones.
//!
//! Wire-up: `BIKECAP_VERIFY=strict|warn|off` gates plan-build-time
//! verification in bikecap-core (see [`VerifyMode`]), the
//! `bikecap-check verify-plans` subcommand sweeps the EXPERIMENTS.md grid,
//! and every verification emits an `ir.verify.plan` span plus
//! `ir.verify.pass` / `ir.verify.violations` values through bikecap-obs.

pub mod mutate;

use std::fmt;

use bikecap_ir::{ModelPlan, PlanView, SlabRole};

/// How plan-build-time verification behaves (`BIKECAP_VERIFY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Verify every compiled plan; a violation rejects the plan and the
    /// model falls back to the eager tape walk for that shape.
    Strict,
    /// Verify every compiled plan; violations are reported through
    /// bikecap-obs but the plan is still used (the default).
    Warn,
    /// Skip verification entirely.
    Off,
}

impl VerifyMode {
    /// Reads `BIKECAP_VERIFY` (`strict` / `warn` / `off`, case-insensitive);
    /// unset or unrecognised values fall back to [`VerifyMode::Warn`].
    pub fn from_env() -> VerifyMode {
        match std::env::var("BIKECAP_VERIFY") {
            Ok(v) if v.eq_ignore_ascii_case("strict") => VerifyMode::Strict,
            Ok(v) if v.eq_ignore_ascii_case("off") => VerifyMode::Off,
            _ => VerifyMode::Warn,
        }
    }

    /// Lower-case mode name, as reported by `/healthz`.
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Strict => "strict",
            VerifyMode::Warn => "warn",
            VerifyMode::Off => "off",
        }
    }
}

/// The invariant class a violation falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// Two simultaneously-live buffers overlap (spatially or temporally).
    SlabOverlap,
    /// A consumer count fails to reach exactly zero: dropped/double
    /// release, use-after-release, reuse-before-release, or a recycled
    /// input/const slab.
    RefcountBalance,
    /// An access extent does not fit its slab, or a slab escapes the arena.
    Bounds,
    /// The schedule itself is malformed: read before producing write,
    /// missing output write, or a write into an input/const slab.
    Schedule,
}

impl Invariant {
    /// Stable lower-kebab name, used in reports and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::SlabOverlap => "slab-overlap",
            Invariant::RefcountBalance => "refcount-balance",
            Invariant::Bounds => "bounds",
            Invariant::Schedule => "schedule",
        }
    }
}

/// One proven invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub invariant: Invariant,
    /// Step index the violation is anchored to, when one exists.
    pub step: Option<usize>,
    /// Slab slot involved, when one exists.
    pub slot: Option<usize>,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.invariant.name())?;
        if let Some(step) = self.step {
            write!(f, " step {step}")?;
        }
        if let Some(slot) = self.slot {
            write!(f, " slot {slot}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Outcome of verifying one plan.
#[derive(Debug, Clone)]
pub struct Report {
    pub violations: Vec<Violation>,
    /// Schedule size, for timing/telemetry context.
    pub steps: usize,
    pub slabs: usize,
    /// Total read+write accesses checked.
    pub accesses: usize,
}

impl Report {
    /// True when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary suitable for logs.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!(
                "ok: {} steps, {} slabs, {} accesses",
                self.steps, self.slabs, self.accesses
            )
        } else {
            format!(
                "{} violation(s) over {} steps / {} slabs",
                self.violations.len(),
                self.steps,
                self.slabs
            )
        }
    }
}

/// Verifies a compiled plan, emitting `ir.verify.*` observability events.
pub fn verify_plan(plan: &ModelPlan) -> Report {
    let _span = bikecap_obs::span("ir.verify.plan");
    let report = verify_view(&plan.view());
    bikecap_obs::value("ir.verify.pass", if report.is_clean() { 1.0 } else { 0.0 });
    if !report.is_clean() {
        bikecap_obs::value("ir.verify.violations", report.violations.len() as f64);
    }
    report
}

/// Verifies a plan view. Pure; no observability side effects, so the
/// mutation harness can hammer it without skewing telemetry.
pub fn verify_view(view: &PlanView) -> Report {
    let mut violations = Vec::new();
    let accesses = view
        .steps
        .iter()
        .map(|s| s.reads.len() + s.writes.len())
        .sum();
    if check_structure(view, &mut violations) {
        check_spatial(view, &mut violations);
        check_bounds(view, &mut violations);
        check_temporal(view, &mut violations);
        check_releases(view, &mut violations);
    }
    Report {
        violations,
        steps: view.steps.len(),
        slabs: view.slabs.len(),
        accesses,
    }
}

/// Index sanity: every slot/step reference must resolve. Returns `false`
/// when the view is too malformed for the deeper checks to run safely.
fn check_structure(view: &PlanView, out: &mut Vec<Violation>) -> bool {
    let n = view.slabs.len();
    let mut ok = true;
    let mut bad_free_from = Vec::new();
    let mut slot_ok = |slot: usize, what: &str, step: Option<usize>| {
        if slot >= n {
            out.push(Violation {
                invariant: Invariant::Schedule,
                step,
                slot: Some(slot),
                message: format!("{what} references slot {slot} but only {n} slabs exist"),
            });
            false
        } else {
            true
        }
    };
    ok &= slot_ok(view.input_slot, "input", None);
    ok &= slot_ok(view.output_slot, "output", None);
    for &(slot, _) in &view.consts {
        ok &= slot_ok(slot, "const prefill", None);
    }
    for (i, step) in view.steps.iter().enumerate() {
        for a in step.reads.iter().chain(&step.writes) {
            ok &= slot_ok(a.slot, step.op, Some(i));
        }
    }
    for &(free_from, slot) in &view.releases {
        ok &= slot_ok(slot, "release", None);
        if free_from > view.steps.len() {
            bad_free_from.push(Violation {
                invariant: Invariant::Schedule,
                step: Some(free_from),
                slot: Some(slot),
                message: format!(
                    "release schedules reuse from step {free_from} but only {} steps exist",
                    view.steps.len()
                ),
            });
            ok = false;
        }
    }
    drop(slot_ok);
    out.append(&mut bad_free_from);
    ok
}

/// Spatial disjointness: in the canonical packing, slab intervals must not
/// overlap each other or escape the arena.
fn check_spatial(view: &PlanView, out: &mut Vec<Violation>) {
    let mut order: Vec<usize> = (0..view.slabs.len()).collect();
    order.sort_by_key(|&i| (view.slabs[i].offset, view.slabs[i].len));
    for pair in order.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let (sa, sb) = (&view.slabs[a], &view.slabs[b]);
        if sa.offset + sa.len > sb.offset {
            out.push(Violation {
                invariant: Invariant::SlabOverlap,
                step: None,
                slot: Some(a),
                message: format!(
                    "slab {a} [{}, {}) overlaps slab {b} [{}, {})",
                    sa.offset,
                    sa.offset + sa.len,
                    sb.offset,
                    sb.offset + sb.len
                ),
            });
        }
    }
    for (i, slab) in view.slabs.iter().enumerate() {
        if slab.offset + slab.len > view.arena_len {
            out.push(Violation {
                invariant: Invariant::SlabOverlap,
                step: None,
                slot: Some(i),
                message: format!(
                    "slab {i} [{}, {}) escapes the arena of {} scalars",
                    slab.offset,
                    slab.offset + slab.len,
                    view.arena_len
                ),
            });
        }
    }
}

/// Bounds: under the exact-size free-list contract every access extent
/// must equal its slab's allocation, and the staged input/output/const
/// lengths must match their slabs.
fn check_bounds(view: &PlanView, out: &mut Vec<Violation>) {
    let mut expect = |slot: usize, extent: usize, what: &str, step: Option<usize>| {
        let len = view.slabs[slot].len;
        if extent != len {
            out.push(Violation {
                invariant: Invariant::Bounds,
                step,
                slot: Some(slot),
                message: format!("{what} extent {extent} != slab allocation {len}"),
            });
        }
    };
    expect(view.input_slot, view.input_len, "staged input", None);
    expect(view.output_slot, view.output_len, "staged output", None);
    for &(slot, numel) in &view.consts {
        expect(slot, numel, "const prefill", None);
    }
    for (i, step) in view.steps.iter().enumerate() {
        for a in &step.reads {
            expect(a.slot, a.extent, &format!("{} read", step.op), Some(i));
        }
        for a in &step.writes {
            expect(a.slot, a.extent, &format!("{} write", step.op), Some(i));
        }
    }
}

/// Temporal liveness from the schedule alone (independent of the recorded
/// releases): no occupation may be clobbered while it still has pending
/// readers, no read may precede the producing write, input/const slabs are
/// never written, every produced value is consumed, and the output survives
/// to the end.
fn check_temporal(view: &PlanView, out: &mut Vec<Violation>) {
    let n = view.slabs.len();
    // Per slot: write events (step, scratch) and read steps, in order.
    let mut writes: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    let mut reads: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, step) in view.steps.iter().enumerate() {
        for a in &step.reads {
            reads[a.slot].push(i);
        }
        for a in &step.writes {
            writes[a.slot].push((i, a.scratch));
        }
    }
    // The caller reads the output after the last step.
    reads[view.output_slot].push(view.steps.len());

    for slot in 0..n {
        let role = view.slabs[slot].role;
        if role != SlabRole::Working {
            if let Some(&(step, _)) = writes[slot].first() {
                out.push(Violation {
                    invariant: Invariant::Schedule,
                    step: Some(step),
                    slot: Some(slot),
                    message: format!("step writes a never-recycled {role:?} slab"),
                });
            }
            continue;
        }
        // Assign each read to the occupation created by the latest write
        // *strictly before* it; reads in the writing step itself see the
        // previous occupation (kernels are not in-place safe).
        let mut last_read = vec![None::<usize>; writes[slot].len()];
        for &r in &reads[slot] {
            let occ = writes[slot].partition_point(|&(w, _)| w < r);
            if occ == 0 {
                out.push(Violation {
                    invariant: Invariant::Schedule,
                    step: Some(r),
                    slot: Some(slot),
                    message: "read before any write to this slab".into(),
                });
            } else {
                let prev = &mut last_read[occ - 1];
                *prev = Some(prev.unwrap_or(0).max(r));
            }
        }
        for (occ, win) in writes[slot].windows(2).enumerate() {
            let (born, _) = win[0];
            let (next, _) = win[1];
            if last_read[occ].is_some_and(|r| next <= r) {
                out.push(Violation {
                    invariant: Invariant::SlabOverlap,
                    step: Some(next),
                    slot: Some(slot),
                    message: format!(
                        "write clobbers the value from step {born} while it still has a \
                         pending reader at step {}",
                        last_read[occ].unwrap_or(0)
                    ),
                });
            }
        }
        for (occ, &(born, scratch)) in writes[slot].iter().enumerate() {
            if last_read[occ].is_none() && !scratch {
                out.push(Violation {
                    invariant: Invariant::RefcountBalance,
                    step: Some(born),
                    slot: Some(slot),
                    message: "value produced but never consumed".into(),
                });
            }
        }
        if slot == view.output_slot && writes[slot].is_empty() {
            out.push(Violation {
                invariant: Invariant::Schedule,
                step: None,
                slot: Some(slot),
                message: "output slab is never written".into(),
            });
        }
    }
}

/// Replays the planner's recorded free-list schedule: every working slab
/// occupation must be released exactly once (except the output's final
/// occupation), never used after release, and never rewritten while its
/// previous occupation is still unreleased.
fn check_releases(view: &PlanView, out: &mut Vec<Violation>) {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Untouched,
        Live,
        Released,
    }
    let mut state = vec![State::Untouched; view.slabs.len()];
    let mut releases: Vec<(usize, usize)> = view.releases.clone();
    releases.sort_unstable();
    let mut next = 0usize;
    for step in 0..=view.steps.len() {
        while next < releases.len() && releases[next].0 <= step {
            let (_, slot) = releases[next];
            next += 1;
            if view.slabs[slot].role != SlabRole::Working {
                out.push(Violation {
                    invariant: Invariant::RefcountBalance,
                    step: Some(step),
                    slot: Some(slot),
                    message: format!(
                        "never-recycled {:?} slab released to the free list",
                        view.slabs[slot].role
                    ),
                });
                continue;
            }
            match state[slot] {
                State::Live => state[slot] = State::Released,
                State::Released => out.push(Violation {
                    invariant: Invariant::RefcountBalance,
                    step: Some(step),
                    slot: Some(slot),
                    message: "slab released twice without an intervening write".into(),
                }),
                State::Untouched => out.push(Violation {
                    invariant: Invariant::RefcountBalance,
                    step: Some(step),
                    slot: Some(slot),
                    message: "slab released before it was ever written".into(),
                }),
            }
        }
        let Some(sv) = view.steps.get(step) else { break };
        for a in &sv.reads {
            if state[a.slot] == State::Released {
                out.push(Violation {
                    invariant: Invariant::RefcountBalance,
                    step: Some(step),
                    slot: Some(a.slot),
                    message: "read from a slab already returned to the free list".into(),
                });
            }
        }
        for a in &sv.writes {
            if view.slabs[a.slot].role != SlabRole::Working {
                continue; // reported by check_temporal
            }
            if state[a.slot] == State::Live {
                out.push(Violation {
                    invariant: Invariant::RefcountBalance,
                    step: Some(step),
                    slot: Some(a.slot),
                    message: "slab rewritten while its previous occupation was never \
                              released (dropped release)"
                        .into(),
                });
            }
            state[a.slot] = State::Live;
        }
    }
    for (slot, &s) in state.iter().enumerate() {
        let role = view.slabs[slot].role;
        if role != SlabRole::Working {
            continue;
        }
        if slot == view.output_slot {
            if s == State::Released {
                out.push(Violation {
                    invariant: Invariant::RefcountBalance,
                    step: None,
                    slot: Some(slot),
                    message: "output slab released before the caller reads it".into(),
                });
            }
        } else if s == State::Live {
            out.push(Violation {
                invariant: Invariant::RefcountBalance,
                step: None,
                slot: Some(slot),
                message: "slab still holds an unreleased value at end of schedule \
                          (dropped release)"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use bikecap_autograd::Tape;
    use bikecap_ir::{CompileOptions, Graph, ModelPlan};
    use bikecap_tensor::conv::Conv3dSpec;
    use bikecap_tensor::Tensor;

    use super::*;

    fn compile(build: impl FnOnce(&mut Tape) -> (bikecap_autograd::Var, bikecap_autograd::Var)) -> ModelPlan {
        let mut tape = Tape::traced();
        let (x, y) = build(&mut tape);
        let graph = Graph::from_tape(&tape, x, y).unwrap();
        ModelPlan::compile(graph, &CompileOptions::default()).unwrap()
    }

    fn chain_plan() -> ModelPlan {
        compile(|tape| {
            let x = tape.constant(Tensor::zeros(&[4, 4]));
            let a = tape.add_scalar(x, 1.0);
            let b = tape.relu(a);
            let c = tape.scale(b, 2.0);
            let w = tape.constant(Tensor::full(&[4, 2], 0.5));
            let y = tape.matmul(c, w);
            (x, y)
        })
    }

    fn conv_plan() -> ModelPlan {
        compile(|tape| {
            let x = tape.constant(Tensor::zeros(&[1, 2, 2, 4, 4]));
            let w = tape.constant(Tensor::full(&[3, 2, 3, 3, 3], 0.1));
            let c = tape.conv3d(x, w, Conv3dSpec::padded(1, 1, 1));
            let s = tape.squash(c, 1);
            (x, s)
        })
    }

    #[test]
    fn planner_output_verifies_clean() {
        for plan in [chain_plan(), conv_plan()] {
            let report = verify_plan(&plan);
            assert!(report.is_clean(), "{:#?}", report.violations);
            assert_eq!(report.steps, plan.num_steps());
            assert_eq!(report.slabs, plan.num_slabs());
            assert!(report.accesses > 0);
        }
    }

    #[test]
    fn overlapping_slabs_are_rejected() {
        let mut view = chain_plan().view();
        // Slide every slab to offset 0: maximal spatial aliasing.
        for slab in &mut view.slabs {
            slab.offset = 0;
        }
        let report = verify_view(&view);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::SlabOverlap));
    }

    #[test]
    fn dropped_release_is_rejected() {
        let mut view = chain_plan().view();
        assert!(!view.releases.is_empty(), "chain must recycle at least one slab");
        view.releases.remove(0);
        let report = verify_view(&view);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::RefcountBalance));
    }

    #[test]
    fn shrunk_slab_is_rejected() {
        let mut view = conv_plan().view();
        let slot = view.steps[0].writes[0].slot;
        view.slabs[slot].len /= 2;
        let report = verify_view(&view);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::Bounds));
    }

    #[test]
    fn read_before_write_is_rejected() {
        let mut view = chain_plan().view();
        // Reverse the schedule: the first matmul read now precedes every
        // producing write.
        view.steps.reverse();
        let report = verify_view(&view);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::Schedule));
    }

    #[test]
    fn write_into_const_slab_is_rejected() {
        let mut view = chain_plan().view();
        let const_slot = view.consts[0].0;
        let victim = &mut view.steps[0].writes[0];
        victim.slot = const_slot;
        victim.extent = view.slabs[const_slot].len;
        let report = verify_view(&view);
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == Invariant::Schedule));
    }

    #[test]
    fn out_of_range_slot_is_reported_not_panicking() {
        let mut view = chain_plan().view();
        view.steps[0].reads[0].slot = 999;
        let report = verify_view(&view);
        assert!(!report.is_clean());
    }

    #[test]
    fn verify_mode_names_round_trip() {
        assert_eq!(VerifyMode::Strict.name(), "strict");
        assert_eq!(VerifyMode::Warn.name(), "warn");
        assert_eq!(VerifyMode::Off.name(), "off");
    }
}
