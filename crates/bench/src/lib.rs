//! Shared scaffolding for the table/figure regeneration binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` (default) — reduced seeds/epochs/days for a laptop-CPU run.
//! * `--full` — the full protocol (5 seeds, one simulated month, larger
//!   training budgets). Expect hours on one core.
//! * `--out <path>` — also write the rendered output to a file.
//!
//! The simulated city is always generated with a fixed seed so every binary
//! (and every rerun) sees the same "Shenzhen October 2018".

use std::path::PathBuf;

use bikecap_baselines::NeuralBudget;
use bikecap_city_sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator, TripData},
    layout::CityLayout,
    ForecastDataset,
};
use bikecap_core::TrainOptions;
use bikecap_eval::RunnerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed of the shared simulated city (the paper's data month, 2018-10-01).
#[allow(clippy::inconsistent_digit_grouping)]
pub const CITY_SEED: u64 = 2018_10_01;

/// Command-line options common to all bench binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Reduced-budget mode (the default).
    pub quick: bool,
    /// Optional output file (in addition to stdout).
    pub out: Option<PathBuf>,
    /// Optional append-only history file (kernels bench; others ignore it).
    pub history: Option<PathBuf>,
}

impl BenchArgs {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags.
    pub fn parse() -> BenchArgs {
        let mut quick = true;
        let mut out = None;
        let mut history = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--full" => quick = false,
                "--out" => {
                    let path = args.next().unwrap_or_else(|| {
                        panic!("--out requires a path argument")
                    });
                    out = Some(PathBuf::from(path));
                }
                "--history" => {
                    let path = args.next().unwrap_or_else(|| {
                        panic!("--history requires a path argument")
                    });
                    history = Some(PathBuf::from(path));
                }
                other => panic!(
                    "unknown argument '{other}'; use --quick, --full, --out <path> or --history <path>"
                ),
            }
        }
        BenchArgs { quick, out, history }
    }

    /// Human-readable mode label.
    pub fn mode(&self) -> &'static str {
        if self.quick {
            "quick"
        } else {
            "full"
        }
    }

    /// Prints `content` and appends it to `--out` when given.
    pub fn emit(&self, content: &str) {
        println!("{content}");
        if let Some(path) = &self.out {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("cannot open {}: {e}", path.display()));
            writeln!(f, "{content}").expect("write to --out file");
        }
    }
}

/// The simulation horizon per mode: 12 days in quick mode, the paper's full
/// month otherwise.
pub fn sim_config(quick: bool) -> SimConfig {
    let mut cfg = SimConfig::paper_scale();
    if quick {
        cfg.days = 12;
    }
    cfg
}

/// Generates the shared simulated city's trip records.
pub fn standard_trips(quick: bool) -> TripData {
    let mut rng = StdRng::seed_from_u64(CITY_SEED);
    let config = sim_config(quick);
    let layout = CityLayout::generate(&config, &mut rng);
    Simulator::new(config, layout).run(&mut rng)
}

/// Aggregates the shared city into a forecasting dataset.
pub fn standard_dataset(quick: bool, history: usize, horizon: usize) -> ForecastDataset {
    let trips = standard_trips(quick);
    let series = DemandSeries::from_trips(&trips, 15);
    ForecastDataset::new(&series, history, horizon)
}

/// The per-mode sweep configuration (seeds, budgets, eval coverage).
pub fn runner_config(quick: bool) -> RunnerConfig {
    if quick {
        RunnerConfig {
            seeds: vec![1, 2],
            eval_anchors: Some(48),
            budget: NeuralBudget {
                epochs: 24,
                batch_size: 16,
                max_batches_per_epoch: Some(16),
                ..NeuralBudget::default()
            },
            // BikeCAP's squash-attenuated gradients need more optimisation
            // steps (and a larger step size) than the baselines to reach its
            // flat multi-step regime; the paper trains everything for 100
            // epochs, which we cannot afford per-model on one core.
            train_options: TrainOptions {
                epochs: 30,
                batch_size: 16,
                max_batches_per_epoch: Some(24),
                learning_rate: 3e-3,
                ..TrainOptions::default()
            },
            hidden: 8,
            kernel: 3,
            pyramid_size: 3,
            capsule_dim: 4,
        }
    } else {
        RunnerConfig {
            seeds: vec![1, 2, 3, 4, 5],
            eval_anchors: Some(96),
            budget: NeuralBudget {
                epochs: 60,
                batch_size: 16,
                max_batches_per_epoch: Some(24),
                ..NeuralBudget::default()
            },
            train_options: TrainOptions {
                epochs: 60,
                batch_size: 16,
                max_batches_per_epoch: Some(24),
                learning_rate: 2e-3,
                ..TrainOptions::default()
            },
            hidden: 8,
            kernel: 3,
            pyramid_size: 3,
            capsule_dim: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_config_modes() {
        assert_eq!(sim_config(true).days, 12);
        assert_eq!(sim_config(false).days, 31);
    }

    #[test]
    fn runner_config_full_has_more_seeds() {
        assert!(runner_config(false).seeds.len() > runner_config(true).seeds.len());
    }

    #[test]
    fn standard_dataset_is_reproducible() {
        let a = standard_dataset(true, 8, 2);
        let b = standard_dataset(true, 8, 2);
        assert_eq!(a.anchors(bikecap_city_sim::Split::Test), b.anchors(bikecap_city_sim::Split::Test));
        let ba = a.batch(&a.anchors(bikecap_city_sim::Split::Test)[..2]);
        let bb = b.batch(&b.anchors(bikecap_city_sim::Split::Test)[..2]);
        assert_eq!(ba.input, bb.input);
    }
}
