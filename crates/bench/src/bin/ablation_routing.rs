//! Design-choice ablations beyond the paper's Fig. 7 — the choices DESIGN.md
//! calls out:
//!
//! 1. **Routing softmax normalisation** — the paper's Eq. 4 formula (over the
//!    whole grid×p volume) vs its prose ("among all predicted capsules from
//!    each capsule s", i.e. per grid location). The volume normalisation
//!    shrinks couplings to ~1/(H·W·p) and starves the decoder.
//! 2. **Routing iterations** — 1 (uniform coupling) vs 2 vs 3.
//! 3. **Separated per-slot transforms** — the Sec. V-B stability extension;
//!    expected to reduce run-to-run variance (the paper's "Stability"
//!    limitation).
//!
//! ```text
//! cargo run -p bikecap-bench --release --bin ablation_routing -- [--quick|--full] [--out FILE]
//! ```

use bikecap_bench::{runner_config, standard_dataset, BenchArgs};
use bikecap_core::{BikeCap, BikeCapConfig, TrainOptions};
use bikecap_eval::tables::markdown_table;
use bikecap_eval::{evaluate, BikeCapForecaster, MeanStd};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_config(
    label: &str,
    make: impl Fn(BikeCapConfig) -> BikeCapConfig,
    ds: &bikecap_city_sim::ForecastDataset,
    seeds: &[u64],
    opts: &TrainOptions,
) -> Vec<String> {
    let (gh, gw) = ds.grid();
    let mut maes = Vec::new();
    let mut rmses = Vec::new();
    let mut params = 0;
    for &seed in seeds {
        let cfg = make(
            BikeCapConfig::new(gh, gw)
                .history(ds.history())
                .horizon(ds.horizon()),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = BikeCap::new(cfg, &mut rng);
        params = model.num_parameters();
        model.fit(ds, opts, &mut rng);
        let fc = BikeCapForecaster::new(model, opts.clone());
        let m = evaluate(&fc, ds, Some(48));
        maes.push(m.mae);
        rmses.push(m.rmse);
    }
    let mae = MeanStd::of(&maes);
    let rmse = MeanStd::of(&rmses);
    eprintln!("[ablation_routing] {label:<28} MAE {:.3}±{:.3}", mae.mean, mae.std);
    vec![
        label.to_string(),
        format!("{:.3}±{:.3}", mae.mean, mae.std),
        format!("{:.3}±{:.3}", rmse.mean, rmse.std),
        params.to_string(),
    ]
}

fn main() {
    let args = BenchArgs::parse();
    let base = runner_config(args.quick);
    let ds = standard_dataset(args.quick, 8, 4);
    let seeds: Vec<u64> = if args.quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    };
    let opts = base.train_options.clone();

    args.emit(&format!(
        "# Routing design ablations at PTS=4 ({} mode, {} seeds)\n",
        args.mode(),
        seeds.len()
    ));

    let rows = vec![
        run_config("softmax per location (prose)", |c| c, &ds, &seeds, &opts),
        run_config(
            "softmax over grid volume (Eq.4)",
            |mut c| {
                c.routing_softmax_over_grid = true;
                c
            },
            &ds,
            &seeds,
            &opts,
        ),
        run_config("1 routing iteration", |c| c.routing_iters(1), &ds, &seeds, &opts),
        run_config("2 routing iterations", |c| c.routing_iters(2), &ds, &seeds, &opts),
        run_config("3 routing iterations", |c| c.routing_iters(3), &ds, &seeds, &opts),
        run_config(
            "separated slot transforms (Sec.V-B)",
            |c| c.separate_slot_transforms(true),
            &ds,
            &seeds,
            &opts,
        ),
    ];
    args.emit(&markdown_table(
        &[
            "configuration".into(),
            "MAE".into(),
            "RMSE".into(),
            "parameters".into(),
        ],
        &rows,
    ));
}
