//! Regenerates **Table III**: MAE and RMSE of all eight methods for
//! PTS = 2..8 (mean±std over seeds).
//!
//! ```text
//! cargo run -p bikecap-bench --release --bin table3_comparison -- [--quick|--full] [--out FILE]
//! ```

use bikecap_bench::{runner_config, standard_dataset, BenchArgs};
use bikecap_eval::{format_mean_std, markdown_table, run_model, ModelKind, SweepResult};

fn main() {
    let args = BenchArgs::parse();
    let cfg = runner_config(args.quick);
    let pts_range: Vec<usize> = (2..=8).collect();
    let lineup = ModelKind::table3_lineup();

    args.emit(&format!(
        "# Table III — Performance comparison ({} mode, {} seed(s))\n",
        args.mode(),
        cfg.seeds.len()
    ));

    let mut results: Vec<Vec<SweepResult>> = Vec::new();
    for &pts in &pts_range {
        eprintln!("[table3] building dataset for PTS={pts}");
        let ds = standard_dataset(args.quick, 8, pts);
        let mut row = Vec::new();
        for kind in lineup {
            let t0 = std::time::Instant::now();
            let r = run_model(kind, &ds, &cfg);
            eprintln!(
                "[table3] PTS={pts} {:<10} MAE {:.3} RMSE {:.3} ({:.1}s)",
                r.model,
                r.mae.mean,
                r.rmse.mean,
                t0.elapsed().as_secs_f64()
            );
            row.push(r);
        }
        results.push(row);
    }

    let header: Vec<String> = std::iter::once("PTS".to_string())
        .chain(lineup.iter().map(|k| k.name().to_string()))
        .collect();
    for (metric, pick) in [
        ("MAE", Box::new(|r: &SweepResult| r.mae) as Box<dyn Fn(&SweepResult) -> _>),
        ("RMSE", Box::new(|r: &SweepResult| r.rmse)),
    ] {
        let rows: Vec<Vec<String>> = pts_range
            .iter()
            .zip(&results)
            .map(|(pts, row)| {
                std::iter::once(format!("PTS={pts}"))
                    .chain(row.iter().map(|r| format_mean_std(pick(r))))
                    .collect()
            })
            .collect();
        args.emit(&format!("## {metric}\n\n{}", markdown_table(&header, &rows)));
    }

    // The paper's headline: BikeCAP's flat error curve vs the baselines'
    // growth. Report the growth factor from PTS=2 to PTS=8 per model.
    let mut growth_rows = Vec::new();
    for (i, kind) in lineup.iter().enumerate() {
        let first = results.first().map(|r| r[i].mae.mean).unwrap_or(f32::NAN);
        let last = results.last().map(|r| r[i].mae.mean).unwrap_or(f32::NAN);
        growth_rows.push(vec![
            kind.name().to_string(),
            format!("{first:.2}"),
            format!("{last:.2}"),
            format!("{:.2}x", last / first),
        ]);
    }
    args.emit(&format!(
        "## MAE growth PTS=2 → PTS=8\n\n{}",
        markdown_table(
            &["Model".into(), "MAE@2".into(), "MAE@8".into(), "growth".into()],
            &growth_rows
        )
    ));
}
