//! Regenerates **Fig. 2** (conceptual): autoregressive models accumulate
//! error over multi-step horizons while independent per-step reconstruction
//! does not.
//!
//! Two demonstrations:
//! 1. A controlled Monte-Carlo study on an AR(1) process with an imperfect
//!    shared one-step model.
//! 2. The per-step MAE of a trained recursive baseline (convLSTM) vs BikeCAP
//!    on the simulated city at PTS=8.
//!
//! ```text
//! cargo run -p bikecap-bench --release --bin fig2_accumulation -- [--quick|--full] [--out FILE]
//! ```

use bikecap_bench::{runner_config, standard_dataset, BenchArgs};
use bikecap_city_sim::Split;
use bikecap_core::{BikeCap, BikeCapConfig};
use bikecap_eval::accumulation::{error_accumulation, per_step_mae};
use bikecap_eval::tables::{ascii_chart, markdown_table};
use bikecap_baselines::{ConvLstmForecaster, Forecaster};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = BenchArgs::parse();
    args.emit(&format!(
        "# Fig. 2 — Error accumulation: autoregressive vs independent ({} mode)\n",
        args.mode()
    ));

    // Part 1: controlled AR(1) study.
    let mut rng = StdRng::seed_from_u64(2);
    let curves = error_accumulation(0.97, 0.05, 0.3, 8, 20_000, &mut rng);
    let rows: Vec<Vec<String>> = (0..8)
        .map(|k| {
            vec![
                (k + 1).to_string(),
                format!("{:.3}", curves.autoregressive[k]),
                format!("{:.3}", curves.independent[k]),
                format!(
                    "{:.2}x",
                    curves.autoregressive[k] / curves.independent[k].max(1e-6)
                ),
            ]
        })
        .collect();
    args.emit(&format!(
        "## Monte-Carlo AR(1) study (a=0.97, model bias 0.05)\n\n{}",
        markdown_table(
            &[
                "step".into(),
                "recursive RMSE".into(),
                "independent RMSE".into(),
                "ratio".into()
            ],
            &rows
        )
    ));
    args.emit(&format!(
        "```\n{}```",
        ascii_chart(
            &[
                ("recursive", &curves.autoregressive),
                ("independent", &curves.independent),
            ],
            10
        )
    ));

    // Part 2: trained models on the simulated city.
    let cfg = runner_config(args.quick);
    let ds = standard_dataset(args.quick, 8, 8);
    eprintln!("[fig2] training convLSTM (recursive) at PTS=8");
    let mut conv = ConvLstmForecaster::new(cfg.hidden, cfg.kernel, cfg.budget.clone(), 1);
    let mut rng = StdRng::seed_from_u64(11);
    conv.fit(&ds, &mut rng);
    eprintln!("[fig2] training BikeCAP (independent) at PTS=8");
    let (gh, gw) = ds.grid();
    let bc_cfg = BikeCapConfig::new(gh, gw)
        .history(8)
        .horizon(8)
        .pyramid_size(cfg.pyramid_size)
        .capsule_dim(cfg.capsule_dim)
        .out_capsule_dim(cfg.capsule_dim);
    let mut rng2 = StdRng::seed_from_u64(12);
    let mut bikecap = BikeCap::new(bc_cfg, &mut rng2);
    bikecap.fit(&ds, &cfg.train_options, &mut rng2);

    let anchors = ds.anchors(Split::Test);
    let take = cfg.eval_anchors.unwrap_or(anchors.len()).min(anchors.len());
    let sel: Vec<usize> = (0..take).map(|i| anchors[i * anchors.len() / take]).collect();
    let mut conv_steps = vec![0.0f32; 8];
    let mut caps_steps = vec![0.0f32; 8];
    let mut batches = 0;
    for chunk in sel.chunks(16) {
        let batch = ds.batch(chunk);
        let truth = ds.denormalize_target(&batch.target);
        let p_conv = ds.denormalize_target(&conv.predict(&batch.input, 8));
        let p_caps = ds.denormalize_target(&bikecap.predict(&batch.input));
        for (k, v) in per_step_mae(&p_conv, &truth).iter().enumerate() {
            conv_steps[k] += v;
        }
        for (k, v) in per_step_mae(&p_caps, &truth).iter().enumerate() {
            caps_steps[k] += v;
        }
        batches += 1;
    }
    for v in conv_steps.iter_mut().chain(caps_steps.iter_mut()) {
        *v /= batches as f32;
    }
    let rows: Vec<Vec<String>> = (0..8)
        .map(|k| {
            vec![
                format!("{} min", (k + 1) * 15),
                format!("{:.3}", conv_steps[k]),
                format!("{:.3}", caps_steps[k]),
            ]
        })
        .collect();
    args.emit(&format!(
        "## Trained models on the simulated city (per-step test MAE, PTS=8)\n\n{}",
        markdown_table(
            &[
                "lead time".into(),
                "convLSTM (recursive)".into(),
                "BikeCAP (independent)".into()
            ],
            &rows
        )
    ));
    args.emit(&format!(
        "```\n{}```",
        ascii_chart(
            &[("convLSTM", &conv_steps), ("BikeCAP", &caps_steps)],
            10
        )
    ));
}
