//! Regenerates **Fig. 1**: the motivating lead–lag observation. Boardings at
//! the residential station A rise before alightings at the CBD station B in
//! the morning; bike rentals near B track B's alightings; the pattern
//! reverses in the afternoon.
//!
//! ```text
//! cargo run -p bikecap-bench --release --bin fig1_leadlag -- [--quick|--full] [--out FILE]
//! ```

use bikecap_bench::{standard_trips, BenchArgs};
use bikecap_city_sim::aggregate::{bike_pickups_near, lagged_correlation, station_flows};
use bikecap_eval::tables::{ascii_chart, markdown_table};

fn main() {
    let args = BenchArgs::parse();
    let trips = standard_trips(args.quick);
    let layout = trips.layout.clone();
    let a = layout.most_residential_station().clone();
    let b = layout.most_commercial_station().clone();

    args.emit(&format!(
        "# Fig. 1 — Upstream subway demand leads downstream bike demand ({} mode)\n",
        args.mode()
    ));
    args.emit(&format!(
        "Station A (residential): {} at cell ({}, {}); Station B (CBD): {} at cell ({}, {})\n",
        a.name, a.cell.row, a.cell.col, b.name, b.cell.row, b.cell.col
    ));

    let (boards_a, alights_a) = station_flows(&trips, a.id, 15);
    let (boards_b, alights_b) = station_flows(&trips, b.id, 15);
    let picks_b = bike_pickups_near(&trips, b.cell, 1, 15);
    let picks_a = bike_pickups_near(&trips, a.cell, 1, 15);

    // Day 1 (Tuesday 2018-10-02): slots 96..192.
    let day = 96..192;
    let slice = |v: &[f32]| v[day.clone()].to_vec();

    // Left panel: morning — A's boardings lead B's alightings and B's bikes.
    let morning = 24..44; // 06:00–11:00
    let ba: Vec<f32> = slice(&boards_a)[morning.clone()].to_vec();
    let ab: Vec<f32> = slice(&alights_b)[morning.clone()].to_vec();
    let pb: Vec<f32> = slice(&picks_b)[morning.clone()].to_vec();
    args.emit("## Morning rush (06:00–11:00, one weekday)\n");
    args.emit(&format!(
        "```\n{}```",
        ascii_chart(
            &[
                ("boardings at A", &ba),
                ("alightings at B", &ab),
                ("bike pick-ups near B", &pb),
            ],
            12
        )
    ));

    // Middle panel: afternoon — B's boardings lead A's alightings and A's bikes.
    let afternoon = 60..88; // 15:00–22:00
    let bb: Vec<f32> = slice(&boards_b)[afternoon.clone()].to_vec();
    let aa: Vec<f32> = slice(&alights_a)[afternoon.clone()].to_vec();
    let pa: Vec<f32> = slice(&picks_a)[afternoon.clone()].to_vec();
    args.emit("## Afternoon rush (15:00–22:00, one weekday)\n");
    args.emit(&format!(
        "```\n{}```",
        ascii_chart(
            &[
                ("boardings at B", &bb),
                ("alightings at A", &aa),
                ("bike pick-ups near A", &pa),
            ],
            12
        )
    ));

    // Quantify the lead-lag over the whole simulation.
    let mut rows = Vec::new();
    for lag in 0..8usize {
        rows.push(vec![
            format!("{} min", lag * 15),
            format!("{:.3}", lagged_correlation(&boards_a, &alights_b, lag)),
            format!("{:.3}", lagged_correlation(&boards_a, &picks_b, lag)),
            format!("{:.3}", lagged_correlation(&alights_b, &picks_b, lag)),
        ]);
    }
    args.emit(&format!(
        "## Lagged Pearson correlations (whole simulation)\n\n{}",
        markdown_table(
            &[
                "lag".into(),
                "board(A) → alight(B)".into(),
                "board(A) → bikes(B)".into(),
                "alight(B) → bikes(B)".into(),
            ],
            &rows
        )
    ));
}
