//! Regenerates **Table V**: BikeCAP performance as the capsule dimension
//! varies (the paper sweeps 2, 4, 8, 16, 32 and discusses a U-shape driven by
//! capacity vs overfitting).
//!
//! ```text
//! cargo run -p bikecap-bench --release --bin table5_capsdim -- [--quick|--full] [--out FILE]
//! ```

use bikecap_bench::{runner_config, standard_dataset, BenchArgs};
use bikecap_core::Variant;
use bikecap_eval::{format_mean_std, markdown_table, run_model, ModelKind};

fn main() {
    let args = BenchArgs::parse();
    let mut cfg = runner_config(args.quick);
    let ds = standard_dataset(args.quick, 8, 4);
    args.emit(&format!(
        "# Table V — Capsule dimension sweep at PTS=4 ({} mode, {} seed(s))\n",
        args.mode(),
        cfg.seeds.len()
    ));

    let dims: &[usize] = if args.quick {
        &[2, 4, 8, 16]
    } else {
        &[2, 4, 8, 16, 32]
    };
    let mut rows = Vec::new();
    for &dim in dims {
        cfg.capsule_dim = dim;
        let r = run_model(ModelKind::BikeCap(Variant::Full), &ds, &cfg);
        eprintln!(
            "[table5] capsule_dim={dim} MAE {:.3} RMSE {:.3} params {:?}",
            r.mae.mean, r.rmse.mean, r.parameters
        );
        rows.push(vec![
            dim.to_string(),
            format_mean_std(r.mae),
            format_mean_std(r.rmse),
            r.parameters.map_or("-".into(), |p| p.to_string()),
        ]);
    }
    args.emit(&markdown_table(
        &[
            "Dimension of Capsule".into(),
            "MAE".into(),
            "RMSE".into(),
            "parameters".into(),
        ],
        &rows,
    ));
}
