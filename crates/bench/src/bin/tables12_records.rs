//! Regenerates **Tables I and II**: the record schemas, shown on a sample of
//! the simulated streams.
//!
//! ```text
//! cargo run -p bikecap-bench --release --bin tables12_records -- [--quick|--full] [--out FILE]
//! ```

use bikecap_bench::{standard_trips, BenchArgs};
use bikecap_city_sim::records::{format_datetime, BikeStatus, SubwayStatus};
use bikecap_eval::markdown_table;

fn main() {
    let args = BenchArgs::parse();
    let trips = standard_trips(args.quick);

    args.emit("# Table I — Subway-trip record format and example\n");
    let rows: Vec<Vec<String>> = trips
        .subway
        .iter()
        .skip(1000)
        .take(6)
        .map(|r| {
            vec![
                format!("{:04}", r.record_id),
                format!("{:05}", r.card_id),
                format_datetime(r.time_min),
                format!("Subway Line No.{}", r.line + 1),
                match r.status {
                    SubwayStatus::Boarding => "Boarding".to_string(),
                    SubwayStatus::Disembarking => "Disembarking".to_string(),
                },
                trips.layout.stations[r.station].name.clone(),
            ]
        })
        .collect();
    args.emit(&markdown_table(
        &[
            "#Record".into(),
            "SZT ID".into(),
            "Time".into(),
            "Transportation".into(),
            "Status".into(),
            "Stations".into(),
        ],
        &rows,
    ));

    args.emit("\n# Table II — Bike-trip record format and example\n");
    let rows: Vec<Vec<String>> = trips
        .bike
        .iter()
        .skip(1000)
        .take(6)
        .map(|r| {
            vec![
                format!("{:04}", r.record_id),
                format!("{:05}", r.user_id),
                format_datetime(r.time_min),
                format!("({:.5}, {:.5})", r.gps.0, r.gps.1),
                match r.status {
                    BikeStatus::PickUp => "Pick-up".to_string(),
                    BikeStatus::DropOff => "Drop-off".to_string(),
                },
                format!("{:05}", r.bike_id),
            ]
        })
        .collect();
    args.emit(&markdown_table(
        &[
            "#Record".into(),
            "User ID".into(),
            "Time".into(),
            "Location".into(),
            "Status".into(),
            "Bike ID".into(),
        ],
        &rows,
    ));

    args.emit(&format!(
        "\nTotals: {} subway trips and {} bike trips over {} days ({} subway / {} bike records).",
        trips.subway_trips(),
        trips.bike_trips(),
        trips.config.days,
        trips.subway.len(),
        trips.bike.len()
    ));
}
