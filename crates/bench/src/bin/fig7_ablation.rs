//! Regenerates **Fig. 7**: the ablation comparison of BikeCAP against
//! BikeCap-Sub, BikeCap-Pyra, BikeCap-3D and BikeCap-3D-Pyra across the
//! multi-step horizon.
//!
//! ```text
//! cargo run -p bikecap-bench --release --bin fig7_ablation -- [--quick|--full] [--out FILE]
//! ```

use bikecap_bench::{runner_config, standard_dataset, BenchArgs};
use bikecap_core::Variant;
use bikecap_eval::tables::ascii_chart;
use bikecap_eval::{format_mean_std, markdown_table, run_model, ModelKind};

fn main() {
    let args = BenchArgs::parse();
    let mut cfg = runner_config(args.quick);
    if args.quick {
        // One seed in quick mode: five variants x four horizons is the
        // workspace's most expensive sweep after Table III.
        cfg.seeds = vec![1];
    }
    // Quick mode samples the horizon ends; full mode sweeps the paper's grid.
    let pts_range: Vec<usize> = if args.quick { vec![2, 6] } else { vec![2, 4, 6, 8] };
    let variants = Variant::all();

    args.emit(&format!(
        "# Fig. 7 — Ablation study ({} mode, {} seed(s))\n",
        args.mode(),
        cfg.seeds.len()
    ));

    let mut mae: Vec<Vec<f32>> = vec![Vec::new(); variants.len()];
    let mut mae_rows = Vec::new();
    let mut rmse_rows = Vec::new();
    for &pts in &pts_range {
        eprintln!("[fig7] building dataset for PTS={pts}");
        let ds = standard_dataset(args.quick, 8, pts);
        let mut mae_row = vec![format!("PTS={pts}")];
        let mut rmse_row = vec![format!("PTS={pts}")];
        for (vi, &variant) in variants.iter().enumerate() {
            let r = run_model(ModelKind::BikeCap(variant), &ds, &cfg);
            eprintln!(
                "[fig7] PTS={pts} {:<16} MAE {:.3} RMSE {:.3}",
                variant.name(),
                r.mae.mean,
                r.rmse.mean
            );
            mae[vi].push(r.mae.mean);
            mae_row.push(format_mean_std(r.mae));
            rmse_row.push(format_mean_std(r.rmse));
        }
        mae_rows.push(mae_row);
        rmse_rows.push(rmse_row);
    }

    let header: Vec<String> = std::iter::once("PTS".to_string())
        .chain(variants.iter().map(|v| v.name().to_string()))
        .collect();
    args.emit(&format!("## MAE\n\n{}", markdown_table(&header, &mae_rows)));
    args.emit(&format!("## RMSE\n\n{}", markdown_table(&header, &rmse_rows)));

    let series: Vec<(&str, &[f32])> = variants
        .iter()
        .zip(&mae)
        .map(|(v, m)| (v.name(), m.as_slice()))
        .collect();
    args.emit(&format!(
        "## MAE across PTS (x-axis: PTS {:?})\n\n```\n{}```",
        pts_range,
        ascii_chart(&series, 12)
    ));
}
