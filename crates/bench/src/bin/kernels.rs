//! Parallel-kernel microbenchmarks: times the `bikecap-rt`-backed hot paths
//! (matmul, conv3d, conv_transpose3d, full `BikeCap::predict` — eager *and*
//! compiled-executor) across thread counts and writes a machine-readable
//! `BENCH_parallel.json` at the workspace root (op name, shape, threads,
//! ns/iter, speedup vs 1 thread, heap allocations per iteration).
//!
//! Every timed op is also checked bitwise against the serial backend at
//! every thread count — the deterministic-reduction contract means the
//! numbers in the JSON always describe *identical* outputs.
//!
//! Allocations are counted by a global counting allocator (this binary
//! only), so `allocs_per_iter` captures everything the op touches: the
//! eager path's per-node tensors versus the compiled path's arena reuse
//! (`predict_into` on the serial backend is the zero-alloc extreme, pinned
//! separately by tests/ir_zero_alloc.rs; here the parallel pool's per-fanout
//! job allocations are included and reported honestly).
//!
//! ```text
//! cargo run -p bikecap-bench --release --bin kernels -- [--quick|--full] [--out FILE]
//! ```
//!
//! `--out` overrides the JSON path (default `BENCH_parallel.json`). Speedups
//! depend on the machine's core count: a single-core container reports ~1.0×
//! (the pool degrades to the serial fast path), which is recorded honestly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bikecap_bench::BenchArgs;
use bikecap_core::{BikeCap, BikeCapConfig, ExecMode, VerifyMode};
use bikecap_rt as rt;
use bikecap_tensor::conv::{conv3d, conv_transpose3d, Conv3dSpec};
use bikecap_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Thread counts swept per op; 1 is the speedup baseline.
const THREAD_SWEEP: &[usize] = &[1, 2, 4];

/// Counts every heap allocation (and growth realloc) in the process so each
/// record can report `allocs_per_iter` alongside its timing.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Record {
    op: &'static str,
    shape: String,
    threads: usize,
    ns_per_iter: u128,
    speedup: f64,
    allocs_per_iter: u64,
}

/// Times `op` at every [`THREAD_SWEEP`] count and checks each output bitwise
/// against the serial backend.
fn bench_op(
    records: &mut Vec<Record>,
    op: &'static str,
    shape: String,
    iters: u32,
    run: impl Fn() -> Tensor,
) {
    rt::set_backend(rt::Backend::Serial);
    let reference = run();
    rt::set_backend(rt::Backend::Parallel);

    let mut baseline_ns = 0u128;
    for &threads in THREAD_SWEEP {
        rt::set_threads(threads);
        let out = run(); // warmup + determinism probe
        assert_bitwise_eq(op, threads, &reference, &out);
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(run());
        }
        let ns = start.elapsed().as_nanos() / u128::from(iters.max(1));
        let allocs_per_iter =
            (ALLOCATIONS.load(Ordering::Relaxed) - allocs_before) / u64::from(iters.max(1));
        if threads == 1 {
            baseline_ns = ns;
        }
        let speedup = baseline_ns as f64 / (ns as f64).max(1.0);
        eprintln!(
            "[kernels] {op:<18} {shape:<24} threads={threads} {ns:>12} ns/iter  {speedup:.2}x  {allocs_per_iter:>6} allocs/iter"
        );
        records.push(Record {
            op,
            shape: shape.clone(),
            threads,
            ns_per_iter: ns,
            speedup,
            allocs_per_iter,
        });
    }
    rt::set_threads(0); // back to auto for the next op
}

fn assert_bitwise_eq(op: &str, threads: usize, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{op}: shape drift at {threads} threads");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{op}: output diverges from serial at {threads} threads (element {i}: {x} vs {y})"
        );
    }
}

fn render_json(records: &[Record]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "  {{\"op\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"ns_per_iter\": {}, \"speedup\": {:.3}, \"allocs_per_iter\": {}}}{sep}",
            r.op, r.shape, r.threads, r.ns_per_iter, r.speedup, r.allocs_per_iter
        );
    }
    s.push_str("]\n");
    s
}

fn main() {
    let args = BenchArgs::parse();
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("BENCH_parallel.json"));
    // (iters per op) scaled by mode; full mode averages over more repeats.
    let scale: u32 = if args.quick { 1 } else { 5 };
    let mut rng = StdRng::seed_from_u64(7);
    let mut records = Vec::new();

    // The matmul core everything reduces to (ops.rs shape).
    let a = Tensor::randn(&[128, 256], 0.0, 1.0, &mut rng);
    let b = Tensor::randn(&[256, 128], 0.0, 1.0, &mut rng);
    bench_op(&mut records, "matmul", "128x256 * 256x128".into(), 40 * scale, || {
        a.matmul(&b)
    });

    // Encoder-shaped dense conv3d and its transpose (decoder upsampling).
    let x = Tensor::randn(&[16, 4, 8, 8, 8], 0.0, 1.0, &mut rng);
    let w = Tensor::randn(&[4, 4, 3, 3, 3], 0.0, 0.1, &mut rng);
    bench_op(&mut records, "conv3d", "16x4x8x8x8 k3x3x3".into(), 20 * scale, || {
        conv3d(&x, &w, Conv3dSpec::padded(1, 1, 1))
    });
    bench_op(&mut records, "conv_transpose3d", "16x4x8x8x8 k3x3x3".into(), 20 * scale, || {
        conv_transpose3d(&x, &w, Conv3dSpec::padded(1, 1, 1))
    });

    // The full inference path: encoder → routing → decoder — once through
    // the eager tape walk, once through the compiled arena executor. The
    // allocs_per_iter gap between the two is the arena-reuse payoff.
    let cfg = BikeCapConfig::new(8, 8).history(8).horizon(4);
    let window = Tensor::rand_uniform(&[8, 4, 8, 8, 8], 0.0, 1.0, &mut rng);

    let mut eager = BikeCap::seeded(cfg.clone(), 11);
    eager.set_exec_mode(ExecMode::Eager);
    bench_op(&mut records, "predict_eager", "batch 8, 8x8 grid, h=8".into(), 2 * scale, || {
        eager.predict(&window)
    });

    let mut compiled = BikeCap::seeded(cfg, 11);
    compiled.set_exec_mode(ExecMode::Compiled);
    compiled.predict(&window); // compile the plan outside the timed window
    bench_op(&mut records, "predict_compiled", "batch 8, 8x8 grid, h=8".into(), 2 * scale, || {
        compiled.predict(&window)
    });


    // Plan-build latency with the verifier off vs strict. The strict
    // record's `speedup` is off_ns / strict_ns — the acceptance bar for
    // `BIKECAP_VERIFY=strict` is < 10% overhead, i.e. a ratio above ~0.9.
    let mut builder = BikeCap::seeded(BikeCapConfig::new(8, 8).history(8).horizon(4), 11);
    let plan_iters = 10 * scale;
    let mut off_ns = 0u128;
    for (mode, op) in [
        (VerifyMode::Off, "plan_build_verify_off"),
        (VerifyMode::Strict, "plan_build_verify_strict"),
    ] {
        builder.set_verify_mode(mode);
        black_box(builder.compile_fresh_plan(8)).expect("plan compiles"); // warmup
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let start = Instant::now();
        for _ in 0..plan_iters {
            black_box(builder.compile_fresh_plan(8));
        }
        let ns = start.elapsed().as_nanos() / u128::from(plan_iters.max(1));
        let allocs_per_iter = (ALLOCATIONS.load(Ordering::Relaxed) - allocs_before)
            / u64::from(plan_iters.max(1));
        let speedup = if mode == VerifyMode::Off {
            off_ns = ns;
            1.0
        } else {
            off_ns as f64 / (ns as f64).max(1.0)
        };
        eprintln!(
            "[kernels] {op:<24} batch 8, 8x8 grid, h=8   {ns:>12} ns/iter  {speedup:.2}x  {allocs_per_iter:>6} allocs/iter"
        );
        records.push(Record {
            op,
            shape: "batch 8, 8x8 grid, h=8".into(),
            threads: 1,
            ns_per_iter: ns,
            speedup,
            allocs_per_iter,
        });
    }

    let json = render_json(&records);
    std::fs::write(&out, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!(
        "wrote {} ({} records, {} mode); all outputs bitwise-identical to serial",
        out.display(),
        records.len(),
        args.mode()
    );
}
