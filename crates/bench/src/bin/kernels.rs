//! Parallel-kernel microbenchmarks: times the `bikecap-rt`-backed hot paths
//! (matmul, conv3d, conv_transpose3d, full `BikeCap::predict` — eager *and*
//! compiled-executor) across thread counts and writes a machine-readable
//! `BENCH_parallel.json` at the workspace root (op name, shape, threads,
//! ns/iter, speedup vs 1 thread, heap allocations per iteration).
//!
//! Timings are the **median of N samples** (3 quick / 5 full), each sample
//! itself averaging `iters` iterations, with the median absolute deviation
//! (`mad_ns`) recorded as the row's noise bound. The file is a schema-2
//! object carrying a machine fingerprint (os/arch/core-count/CPU model) so
//! `bikecap-check bench-compare` knows whether absolute nanoseconds from two
//! files are comparable at all; every run also appends its full record to an
//! append-only `BENCH_history.jsonl` (one JSON object per line) for
//! longitudinal tracking and CI artifacts. DESIGN.md Appendix I documents
//! the record schema and the regression rule.
//!
//! Every timed op is also checked bitwise against the serial backend at
//! every thread count — the deterministic-reduction contract means the
//! numbers in the JSON always describe *identical* outputs.
//!
//! Allocations are counted by a global counting allocator (this binary
//! only), so `allocs_per_iter` captures everything the op touches: the
//! eager path's per-node tensors versus the compiled path's arena reuse
//! (`predict_into` on the serial backend is the zero-alloc extreme, pinned
//! separately by tests/ir_zero_alloc.rs; here the parallel pool's per-fanout
//! job allocations are included and reported honestly).
//!
//! ```text
//! cargo run -p bikecap-bench --release --bin kernels -- [--quick|--full] [--out FILE]
//! ```
//!
//! `--out` overrides the JSON path (default `BENCH_parallel.json`) and
//! `--history` the history path (default `BENCH_history.jsonl`). Speedups
//! depend on the machine's core count: a single-core container reports ~1.0×
//! (the pool degrades to the serial fast path), which is recorded honestly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bikecap_bench::BenchArgs;
use bikecap_core::{BikeCap, BikeCapConfig, ExecMode, VerifyMode};
use bikecap_quant::{conv3d_q8, matmul_q8_into, Q8Tensor};
use bikecap_rt as rt;
use bikecap_tensor::conv::{conv3d, conv_transpose3d, Conv3dSpec};
use bikecap_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Thread counts swept per op; 1 is the speedup baseline.
const THREAD_SWEEP: &[usize] = &[1, 2, 4];

/// Timing samples per (op, threads) cell — odd, so the median is an actual
/// sample and the MAD is exact rather than interpolated.
const SAMPLES_QUICK: usize = 3;
const SAMPLES_FULL: usize = 5;

/// Counts every heap allocation (and growth realloc) in the process so each
/// record can report `allocs_per_iter` alongside its timing.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Record {
    op: &'static str,
    shape: String,
    threads: usize,
    ns_per_iter: u128,
    /// Median absolute deviation of the per-sample ns/iter — the row's
    /// noise bound, consumed by `bikecap-check bench-compare`.
    mad_ns: u128,
    speedup: f64,
    allocs_per_iter: u64,
}

/// Median of a sorted odd-length slice and the MAD around it.
fn median_and_mad(sorted: &[u128]) -> (u128, u128) {
    let med = sorted[sorted.len() / 2];
    let mut dev: Vec<u128> = sorted.iter().map(|s| s.abs_diff(med)).collect();
    dev.sort_unstable();
    (med, dev[dev.len() / 2])
}

/// os-arch-cores plus the CPU model string (best effort): enough to tell
/// whether two bench files' absolute timings are comparable.
fn machine_fingerprint() -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown-cpu".to_string());
    let cpu: String = cpu
        .chars()
        .map(|c| if c == '"' || c == '\\' { '_' } else { c })
        .collect();
    format!(
        "{}-{}-{}c {}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        cores,
        cpu
    )
}

/// Times `op` at every [`THREAD_SWEEP`] count and checks each output bitwise
/// against the serial backend.
fn bench_op(
    records: &mut Vec<Record>,
    op: &'static str,
    shape: String,
    iters: u32,
    samples: usize,
    run: impl Fn() -> Tensor,
) {
    rt::set_backend(rt::Backend::Serial);
    let reference = run();
    rt::set_backend(rt::Backend::Parallel);

    let mut baseline_ns = 0u128;
    for &threads in THREAD_SWEEP {
        rt::set_threads(threads);
        let out = run(); // warmup + determinism probe
        assert_bitwise_eq(op, threads, &reference, &out);
        // Pre-size the sample buffer so the sampling loop itself never
        // allocates into the counted window.
        let mut sample_ns: Vec<u128> = Vec::with_capacity(samples);
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(run());
            }
            sample_ns.push(start.elapsed().as_nanos() / u128::from(iters.max(1)));
        }
        let total_iters = u64::from(iters.max(1)) * samples.max(1) as u64;
        let allocs_per_iter =
            (ALLOCATIONS.load(Ordering::Relaxed) - allocs_before) / total_iters;
        sample_ns.sort_unstable();
        let (ns, mad) = median_and_mad(&sample_ns);
        if threads == 1 {
            baseline_ns = ns;
        }
        let speedup = baseline_ns as f64 / (ns as f64).max(1.0);
        eprintln!(
            "[kernels] {op:<18} {shape:<24} threads={threads} {ns:>12} ns/iter (±{mad})  {speedup:.2}x  {allocs_per_iter:>6} allocs/iter"
        );
        records.push(Record {
            op,
            shape: shape.clone(),
            threads,
            ns_per_iter: ns,
            mad_ns: mad,
            speedup,
            allocs_per_iter,
        });
    }
    rt::set_threads(0); // back to auto for the next op
}

fn assert_bitwise_eq(op: &str, threads: usize, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{op}: shape drift at {threads} threads");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{op}: output diverges from serial at {threads} threads (element {i}: {x} vs {y})"
        );
    }
}

/// Schema-2 bench file: a fingerprinted object wrapping the record rows.
/// `compact` renders the whole thing on one line (the history format).
fn render_json(records: &[Record], fingerprint: &str, mode: &str, samples: usize, compact: bool) -> String {
    let (nl, ind) = if compact { ("", "") } else { ("\n", "  ") };
    let mut s = String::new();
    let _ = write!(
        s,
        "{{{nl}{ind}\"schema\": 2,{nl}{ind}\"fingerprint\": \"{fingerprint}\",{nl}{ind}\"mode\": \"{mode}\",{nl}{ind}\"samples\": {samples},{nl}{ind}\"records\": [{nl}"
    );
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let _ = write!(
            s,
            "{ind}{ind}{{\"op\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"ns_per_iter\": {}, \"mad_ns\": {}, \"speedup\": {:.3}, \"allocs_per_iter\": {}}}{sep}{nl}",
            r.op, r.shape, r.threads, r.ns_per_iter, r.mad_ns, r.speedup, r.allocs_per_iter
        );
    }
    let _ = write!(s, "{ind}]{nl}}}");
    if !compact {
        s.push('\n');
    }
    s
}

fn main() {
    let args = BenchArgs::parse();
    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("BENCH_parallel.json"));
    let history = args
        .history
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_history.jsonl"));
    // (iters per sample) scaled by mode; full mode also takes more samples.
    let scale: u32 = if args.quick { 1 } else { 3 };
    let samples = if args.quick { SAMPLES_QUICK } else { SAMPLES_FULL };
    let mut rng = StdRng::seed_from_u64(7);
    let mut records = Vec::new();

    // The matmul core everything reduces to (ops.rs shape).
    let a = Tensor::randn(&[128, 256], 0.0, 1.0, &mut rng);
    let b = Tensor::randn(&[256, 128], 0.0, 1.0, &mut rng);
    bench_op(&mut records, "matmul", "128x256 * 256x128".into(), 40 * scale, samples, || {
        a.matmul(&b)
    });

    // Encoder-shaped dense conv3d and its transpose (decoder upsampling).
    let x = Tensor::randn(&[16, 4, 8, 8, 8], 0.0, 1.0, &mut rng);
    let w = Tensor::randn(&[4, 4, 3, 3, 3], 0.0, 0.1, &mut rng);
    bench_op(&mut records, "conv3d", "16x4x8x8x8 k3x3x3".into(), 20 * scale, samples, || {
        conv3d(&x, &w, Conv3dSpec::padded(1, 1, 1))
    });
    bench_op(&mut records, "conv_transpose3d", "16x4x8x8x8 k3x3x3".into(), 20 * scale, samples, || {
        conv_transpose3d(&x, &w, Conv3dSpec::padded(1, 1, 1))
    });

    // Quantized counterparts of the two kernels above, same shapes: Q8_0
    // block weights, activations quantized per row inside the kernel. The
    // f32-vs-q8 ns gap is the memory-bandwidth payoff the roofline work
    // model predicts (weight traffic drops to 36/32 bytes per element).
    let bq = Q8Tensor::quantize_transposed(b.as_slice(), &[256, 128], 256, 128);
    bench_op(&mut records, "matmul_q8", "128x256 * 256x128".into(), 40 * scale, samples, || {
        let mut out = Tensor::zeros(&[128, 128]);
        matmul_q8_into(a.as_slice(), &bq, 128, 256, 128, out.as_mut_slice());
        out
    });
    let wq = Q8Tensor::quantize(w.as_slice(), &[4, 4, 3, 3, 3], 4, 4 * 27);
    bench_op(&mut records, "conv3d_q8", "16x4x8x8x8 k3x3x3".into(), 20 * scale, samples, || {
        let (data, shape) = conv3d_q8(x.as_slice(), x.shape(), &wq, Conv3dSpec::padded(1, 1, 1));
        Tensor::from_vec(data, &shape)
    });

    // The full inference path: encoder → routing → decoder — once through
    // the eager tape walk, once through the compiled arena executor. The
    // allocs_per_iter gap between the two is the arena-reuse payoff.
    let cfg = BikeCapConfig::new(8, 8).history(8).horizon(4);
    let window = Tensor::rand_uniform(&[8, 4, 8, 8, 8], 0.0, 1.0, &mut rng);

    let mut eager = BikeCap::seeded(cfg.clone(), 11);
    eager.set_exec_mode(ExecMode::Eager);
    bench_op(&mut records, "predict_eager", "batch 8, 8x8 grid, h=8".into(), 2 * scale, samples, || {
        eager.predict(&window)
    });

    let mut compiled = BikeCap::seeded(cfg, 11);
    compiled.set_exec_mode(ExecMode::Compiled);
    compiled.predict(&window); // compile the plan outside the timed window
    bench_op(&mut records, "predict_compiled", "batch 8, 8x8 grid, h=8".into(), 2 * scale, samples, || {
        compiled.predict(&window)
    });


    // Plan-build latency with the verifier off vs strict. The strict
    // record's `speedup` is off_ns / strict_ns — the acceptance bar for
    // `BIKECAP_VERIFY=strict` is < 10% overhead, i.e. a ratio above ~0.9.
    let mut builder = BikeCap::seeded(BikeCapConfig::new(8, 8).history(8).horizon(4), 11);
    let plan_iters = 10 * scale;
    let mut off_ns = 0u128;
    for (mode, op) in [
        (VerifyMode::Off, "plan_build_verify_off"),
        (VerifyMode::Strict, "plan_build_verify_strict"),
    ] {
        builder.set_verify_mode(mode);
        black_box(builder.compile_fresh_plan(8)).expect("plan compiles"); // warmup
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let start = Instant::now();
        for _ in 0..plan_iters {
            black_box(builder.compile_fresh_plan(8));
        }
        let ns = start.elapsed().as_nanos() / u128::from(plan_iters.max(1));
        let allocs_per_iter = (ALLOCATIONS.load(Ordering::Relaxed) - allocs_before)
            / u64::from(plan_iters.max(1));
        let speedup = if mode == VerifyMode::Off {
            off_ns = ns;
            1.0
        } else {
            off_ns as f64 / (ns as f64).max(1.0)
        };
        eprintln!(
            "[kernels] {op:<24} batch 8, 8x8 grid, h=8   {ns:>12} ns/iter  {speedup:.2}x  {allocs_per_iter:>6} allocs/iter"
        );
        records.push(Record {
            op,
            shape: "batch 8, 8x8 grid, h=8".into(),
            threads: 1,
            ns_per_iter: ns,
            // Single-sample row: the compare gate's relative noise band
            // covers it (plan builds are long enough to be stable).
            mad_ns: 0,
            speedup,
            allocs_per_iter,
        });
    }

    let fingerprint = machine_fingerprint();
    let json = render_json(&records, &fingerprint, args.mode(), samples, false);
    std::fs::write(&out, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    // Append-only history: one compact record per run, never rewritten, so
    // the timeline of a machine's numbers survives across regenerations.
    let line = render_json(&records, &fingerprint, args.mode(), samples, true);
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&history)
            .unwrap_or_else(|e| panic!("cannot open {}: {e}", history.display()));
        writeln!(f, "{line}").expect("append bench history");
    }
    println!(
        "wrote {} + history {} ({} records, {} mode, median of {} samples); all outputs bitwise-identical to serial",
        out.display(),
        history.display(),
        records.len(),
        args.mode(),
        samples
    );
}
