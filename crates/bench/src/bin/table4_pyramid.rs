//! Regenerates **Table IV**: BikeCAP performance as the pyramid size varies
//! (the paper sweeps 2, 4, 6, 8 and discusses a U-shape).
//!
//! ```text
//! cargo run -p bikecap-bench --release --bin table4_pyramid -- [--quick|--full] [--out FILE]
//! ```

use bikecap_bench::{runner_config, standard_dataset, BenchArgs};
use bikecap_core::Variant;
use bikecap_eval::{format_mean_std, markdown_table, run_model, ModelKind};

fn main() {
    let args = BenchArgs::parse();
    let mut cfg = runner_config(args.quick);
    let ds = standard_dataset(args.quick, 8, 4);
    args.emit(&format!(
        "# Table IV — Pyramid size sweep at PTS=4 ({} mode, {} seed(s))\n",
        args.mode(),
        cfg.seeds.len()
    ));

    let mut rows = Vec::new();
    for size in [1usize, 2, 3, 4] {
        // The paper sweeps 2..8 on a city-scale grid; on the 8x8 reproduction
        // grid a pyramid of size k has spatial reach 2k-1, so sizes 1..4 span
        // "too small" to "grid-covering" — the same regimes.
        cfg.pyramid_size = size;
        let r = run_model(ModelKind::BikeCap(Variant::Full), &ds, &cfg);
        eprintln!(
            "[table4] pyramid={size} MAE {:.3} RMSE {:.3} params {:?}",
            r.mae.mean, r.rmse.mean, r.parameters
        );
        rows.push(vec![
            size.to_string(),
            format!("{}", 2 * size - 1),
            format_mean_std(r.mae),
            format_mean_std(r.rmse),
            r.parameters.map_or("-".into(), |p| p.to_string()),
        ]);
    }
    args.emit(&markdown_table(
        &[
            "Size of Pyramid".into(),
            "spatial reach".into(),
            "MAE".into(),
            "RMSE".into(),
            "parameters".into(),
        ],
        &rows,
    ));
}
