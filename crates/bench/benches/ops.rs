//! Criterion benchmarks of the op-level design choices DESIGN.md calls out:
//! pyramid vs dense 3-D convolution, the routing stage, squash and softmax,
//! and the matmul core everything reduces to.

use bikecap_autograd::{ParamStore, Tape};
use bikecap_core::capsules::{HistoricalCapsules, SpatialTemporalRouting};
use bikecap_core::{BikeCapConfig, Encoder};
use bikecap_tensor::conv::{conv3d, Conv3dSpec};
use bikecap_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::randn(&[128, 256], 0.0, 1.0, &mut rng);
    let b = Tensor::randn(&[256, 128], 0.0, 1.0, &mut rng);
    c.bench_function("matmul_128x256x128", |bch| {
        bch.iter(|| black_box(a.matmul(&b)))
    });
}

fn bench_conv3d_dense_vs_pyramid(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    // BikeCAP's encoder shape: batch 16, 4 channels, 8 slots, 8x8 grid.
    let x = Tensor::randn(&[16, 4, 8, 8, 8], 0.0, 1.0, &mut rng);
    // Dense 3x3x3 kernel (the BikeCap-Pyra ablation encoder).
    let w_dense = Tensor::randn(&[4, 4, 3, 3, 3], 0.0, 0.1, &mut rng);
    c.bench_function("conv3d_dense_3x3x3", |bch| {
        bch.iter(|| black_box(conv3d(&x, &w_dense, Conv3dSpec::padded(1, 1, 1))))
    });
    // Pyramid k=3 kernel (depth 3, spatial 5x5, masked): the mask costs one
    // extra elementwise multiply over the weights.
    let w_pyr = Tensor::randn(&[4, 4, 3, 5, 5], 0.0, 0.1, &mut rng);
    let mask = bikecap_nn::PyramidConv3d::pyramid_mask(4, 4, 3);
    c.bench_function("conv3d_pyramid_k3", |bch| {
        bch.iter(|| {
            let wm = w_pyr.mul(&mask);
            black_box(conv3d(&x, &wm, Conv3dSpec::padded(0, 2, 2)))
        })
    });
}

fn bench_softmax_and_squash(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let logits = Tensor::randn(&[16, 8, 8, 8, 4], 0.0, 1.0, &mut rng);
    c.bench_function("softmax_trailing_1_axis", |bch| {
        bch.iter(|| black_box(logits.softmax_trailing(1)))
    });
    c.bench_function("softmax_trailing_3_axes", |bch| {
        bch.iter(|| black_box(logits.softmax_trailing(3)))
    });
    let caps = Tensor::randn(&[16, 8, 4, 8, 8], 0.0, 1.0, &mut rng);
    c.bench_function("squash_on_tape", |bch| {
        bch.iter(|| {
            let mut tape = Tape::new();
            let x = tape.constant(caps.clone());
            let s = tape.squash(x, 2);
            black_box(tape.value(s).clone());
        })
    });
}

fn bench_capsule_stages(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let cfg = BikeCapConfig::new(8, 8).history(8).horizon(4);
    let mut store = ParamStore::new();
    let enc = HistoricalCapsules::new(&cfg, &mut store, &mut rng);
    let routing = SpatialTemporalRouting::new(&cfg, &mut store, &mut rng);
    let x = Tensor::rand_uniform(&[16, 4, 8, 8, 8], 0.0, 1.0, &mut rng);

    c.bench_function("historical_capsules_forward", |bch| {
        bch.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let caps = enc.forward(&mut tape, xv, &store);
            black_box(tape.value(caps).clone());
        })
    });

    let phi = {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let caps = enc.forward(&mut tape, xv, &store);
        tape.value(caps).clone()
    };
    c.bench_function("spatial_temporal_routing_3iters", |bch| {
        bch.iter(|| {
            let mut tape = Tape::new();
            let pv = tape.constant(phi.clone());
            let out = routing.forward(&mut tape, pv, &store);
            black_box(tape.value(out).clone());
        })
    });

    // Encoder ablation cost comparison (paper Sec. V-B discusses cost).
    let mut cfg2 = cfg.clone();
    cfg2.encoder = Encoder::StandardConv3d;
    let mut store2 = ParamStore::new();
    let enc2 = HistoricalCapsules::new(&cfg2, &mut store2, &mut rng);
    c.bench_function("historical_capsules_dense_conv_forward", |bch| {
        bch.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let caps = enc2.forward(&mut tape, xv, &store2);
            black_box(tape.value(caps).clone());
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_matmul, bench_conv3d_dense_vs_pyramid, bench_softmax_and_squash, bench_capsule_stages
}
criterion_main!(benches);
