//! Criterion benchmarks of the data substrate: trip generation, aggregation
//! and window assembly throughput.

use bikecap_city_sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    layout::CityLayout,
    ForecastDataset, Split,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("generate_trips_2_days_8x8", |bch| {
        bch.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut config = SimConfig::paper_scale();
            config.days = 2;
            let layout = CityLayout::generate(&config, &mut rng);
            black_box(Simulator::new(config, layout).run(&mut rng).bike_trips())
        })
    });

    let mut rng = StdRng::seed_from_u64(2);
    let mut config = SimConfig::paper_scale();
    config.days = 6;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    c.bench_function("aggregate_6_days_to_15min_slots", |bch| {
        bch.iter(|| black_box(DemandSeries::from_trips(&trips, 15).num_slots()))
    });

    let series = DemandSeries::from_trips(&trips, 15);
    let ds = ForecastDataset::new(&series, 8, 4);
    let anchors = ds.anchors(Split::Train);
    c.bench_function("assemble_batch_of_16_windows", |bch| {
        bch.iter(|| black_box(ds.batch(&anchors[..16]).input.len()))
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_simulator
}
criterion_main!(benches);
