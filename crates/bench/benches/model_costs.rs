//! Criterion benchmarks of whole-model costs — the reproduction of the
//! paper's Sec. V-B "Computation Cost" discussion (parameter counts and
//! per-step training time). Parameter counts are printed once at start.

use bikecap_autograd::Tape;
use bikecap_baselines::{ConvLstmForecaster, Forecaster, NeuralBudget, StgcnForecaster};
use bikecap_city_sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    layout::CityLayout,
    ForecastDataset, Split,
};
use bikecap_core::{BikeCap, BikeCapConfig, TrainOptions, Variant};
use bikecap_nn::Adam;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn dataset() -> ForecastDataset {
    let mut rng = StdRng::seed_from_u64(2018);
    let mut config = SimConfig::paper_scale();
    config.days = 6;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    let series = DemandSeries::from_trips(&trips, 15);
    ForecastDataset::new(&series, 8, 4)
}

fn bikecap(variant: Variant) -> BikeCap {
    let mut rng = StdRng::seed_from_u64(7);
    BikeCap::new(
        BikeCapConfig::new(8, 8).history(8).horizon(4).variant(variant),
        &mut rng,
    )
}

fn bench_model_costs(c: &mut Criterion) {
    let ds = dataset();
    let anchors = ds.anchors(Split::Train);
    let batch = ds.batch(&anchors[..16]);

    // Parameter audit (the paper reports 646,395 at its city scale).
    for v in Variant::all() {
        eprintln!(
            "[params] {:<16} {:>8}",
            v.name(),
            bikecap(v).num_parameters()
        );
    }

    let model = bikecap(Variant::Full);
    c.bench_function("bikecap_predict_batch16", |bch| {
        bch.iter(|| black_box(model.predict(&batch.input)))
    });

    c.bench_function("bikecap_train_step_batch16", |bch| {
        let mut m = bikecap(Variant::Full);
        let mut opt = Adam::new(1e-3);
        bch.iter(|| {
            m.store_mut().zero_grads();
            let mut tape = Tape::new();
            let x = tape.constant(batch.input.clone());
            let t = tape.constant(batch.target.clone());
            let pred = m.forward(&mut tape, x);
            let loss = tape.l1_loss(pred, t);
            tape.backward(loss, m.store_mut());
            opt.step(m.store_mut());
            black_box(tape.value(loss).item());
        })
    });

    let conv = ConvLstmForecaster::new(8, 3, NeuralBudget::smoke(), 1);
    eprintln!("[params] {:<16} {:>8}", "convLSTM", conv.num_parameters());
    c.bench_function("convlstm_predict_batch16_horizon4", |bch| {
        bch.iter(|| black_box(conv.predict(&batch.input, 4)))
    });

    let stgcn = StgcnForecaster::new(8, 8, 8, 8, 1, NeuralBudget::smoke(), 1);
    eprintln!("[params] {:<16} {:>8}", "STGCN", stgcn.num_parameters());
    c.bench_function("stgcn_predict_batch16_horizon4", |bch| {
        bch.iter(|| black_box(stgcn.predict(&batch.input, 4)))
    });

    // One full BikeCAP training epoch over 16 batches — the unit the paper
    // times at 90.4 s/epoch on its GPU setup.
    c.bench_function("bikecap_epoch_16_batches", |bch| {
        bch.iter(|| {
            let mut m = bikecap(Variant::Full);
            let opts = TrainOptions {
                epochs: 1,
                batch_size: 16,
                max_batches_per_epoch: Some(16),
                ..TrainOptions::default()
            };
            let mut rng = StdRng::seed_from_u64(3);
            black_box(m.fit(&ds, &opts, &mut rng).final_loss().unwrap_or(f32::NAN));
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_model_costs
}
criterion_main!(benches);
