//! Finite-difference gradient checks through whole layers: the composition
//! of ops inside each layer must differentiate correctly end to end.

use bikecap_autograd::{ParamStore, Tape};
use bikecap_nn::graph::{grid_adjacency, normalized_laplacian, scaled_laplacian};
use bikecap_nn::{ChebConv, Conv3d, ConvLstmCell, Dense, LstmCell, PyramidConv3d};
use bikecap_tensor::conv::Conv3dSpec;
use bikecap_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks the gradient of a layer's *parameters* by treating every parameter
/// as a grad-check input: rebuild the layer each evaluation with the
/// perturbed values.
fn layer_param_check(
    build_loss: impl Fn(&mut Tape, &ParamStore) -> bikecap_autograd::Var,
    store: &ParamStore,
    tol: f32,
) {
    // Analytic gradients.
    let mut analytic_store = store.clone();
    analytic_store.zero_grads();
    let mut tape = Tape::new();
    let loss = build_loss(&mut tape, &analytic_store);
    tape.backward(loss, &mut analytic_store);

    // Numeric: central differences over every coordinate of every parameter.
    let eps = 1e-2;
    for (id, name, value) in store.iter() {
        let mut perturbed = store.clone();
        for ci in 0..value.len() {
            let orig = value.as_slice()[ci];
            let mut v = value.clone();
            v.as_mut_slice()[ci] = orig + eps;
            perturbed.set_value(id, v.clone());
            let mut tp = Tape::new();
            let l = build_loss(&mut tp, &perturbed);
            let lp = tp.value(l).item();
            v.as_mut_slice()[ci] = orig - eps;
            perturbed.set_value(id, v.clone());
            let mut tm = Tape::new();
            let l = build_loss(&mut tm, &perturbed);
            let lm = tm.value(l).item();
            v.as_mut_slice()[ci] = orig;
            perturbed.set_value(id, v);
            let fd = (lp - lm) / (2.0 * eps);
            let an = analytic_store.grad(id).as_slice()[ci];
            let rel = (fd - an).abs() / fd.abs().max(an.abs()).max(1.0);
            assert!(
                rel < tol,
                "{name}[{ci}]: finite-diff {fd} vs analytic {an} (rel {rel})"
            );
        }
    }
}

#[test]
fn dense_layer_parameter_gradients() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let layer = Dense::new(&mut store, "fc", 3, 2, &mut rng);
    let x = Tensor::randn(&[4, 3], 0.0, 1.0, &mut rng);
    layer_param_check(
        move |tape, st| {
            let xv = tape.constant(x.clone());
            let y = layer.forward(tape, xv, st);
            let s = tape.square(y);
            tape.sum(s)
        },
        &store,
        2e-2,
    );
}

#[test]
fn pyramid_conv_parameter_gradients() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let layer = PyramidConv3d::new(&mut store, "p", 1, 1, 2, &mut rng);
    let x = Tensor::randn(&[1, 1, 3, 3, 3], 0.0, 1.0, &mut rng);
    layer_param_check(
        move |tape, st| {
            let xv = tape.constant(x.clone());
            let y = layer.forward(tape, xv, st);
            let s = tape.square(y);
            tape.sum(s)
        },
        &store,
        3e-2,
    );
}

#[test]
fn conv3d_layer_parameter_gradients() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let layer = Conv3d::new(
        &mut store,
        "c",
        1,
        2,
        (2, 2, 2),
        Conv3dSpec::default(),
        &mut rng,
    );
    let x = Tensor::randn(&[1, 1, 3, 3, 3], 0.0, 1.0, &mut rng);
    layer_param_check(
        move |tape, st| {
            let xv = tape.constant(x.clone());
            let y = layer.forward(tape, xv, st);
            let s = tape.square(y);
            tape.sum(s)
        },
        &store,
        3e-2,
    );
}

#[test]
fn chebconv_parameter_gradients() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let layer = ChebConv::new(&mut store, "gc", 2, 2, 2, &mut rng);
    let lap = scaled_laplacian(&normalized_laplacian(&grid_adjacency(2, 2, 1)));
    let x = Tensor::randn(&[1, 4, 2], 0.0, 1.0, &mut rng);
    layer_param_check(
        move |tape, st| {
            let xv = tape.constant(x.clone());
            let y = layer.forward(tape, xv, &lap, st);
            let s = tape.square(y);
            tape.sum(s)
        },
        &store,
        3e-2,
    );
}

/// Checks gradients w.r.t. a designated "input" parameter registered in the
/// same store as the layer's weights (the tape requires a single store).
fn input_grad_check(
    store: &ParamStore,
    input_id: bikecap_autograd::ParamId,
    build_loss: impl Fn(&mut Tape, &ParamStore) -> bikecap_autograd::Var,
    tol: f32,
) {
    let mut analytic = store.clone();
    analytic.zero_grads();
    let mut tape = Tape::new();
    let loss = build_loss(&mut tape, &analytic);
    tape.backward(loss, &mut analytic);
    let grads = analytic.grad(input_id).clone();

    let eps = 1e-2;
    let mut perturbed = store.clone();
    let base = store.value(input_id).clone();
    for ci in 0..base.len() {
        let orig = base.as_slice()[ci];
        let mut v = base.clone();
        v.as_mut_slice()[ci] = orig + eps;
        perturbed.set_value(input_id, v.clone());
        let mut tp = Tape::new();
        let l = build_loss(&mut tp, &perturbed);
        let lp = tp.value(l).item();
        v.as_mut_slice()[ci] = orig - eps;
        perturbed.set_value(input_id, v.clone());
        let mut tm = Tape::new();
        let l = build_loss(&mut tm, &perturbed);
        let lm = tm.value(l).item();
        v.as_mut_slice()[ci] = orig;
        perturbed.set_value(input_id, v);
        let fd = (lp - lm) / (2.0 * eps);
        let an = grads.as_slice()[ci];
        let rel = (fd - an).abs() / fd.abs().max(an.abs()).max(1.0);
        assert!(rel < tol, "input[{ci}]: finite-diff {fd} vs analytic {an}");
    }
}

#[test]
fn lstm_cell_input_gradients() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, "l", 2, 3, &mut rng);
    let input = store.add("input", Tensor::randn(&[2, 2], 0.0, 1.0, &mut rng));
    input_grad_check(
        &store,
        input,
        move |tape, st| {
            let xv = tape.param(st, input);
            let (h0, c0) = cell.zero_state(2);
            let h = tape.constant(h0);
            let c = tape.constant(c0);
            let (h1, _) = cell.step(tape, xv, (h, c), st);
            let s = tape.square(h1);
            tape.sum(s)
        },
        3e-2,
    );
}

#[test]
fn conv_lstm_cell_input_gradients() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut store = ParamStore::new();
    let cell = ConvLstmCell::new(&mut store, "cl", 1, 2, 3, &mut rng);
    let input = store.add("input", Tensor::randn(&[1, 1, 3, 3], 0.0, 1.0, &mut rng));
    input_grad_check(
        &store,
        input,
        move |tape, st| {
            let xv = tape.param(st, input);
            let (h0, c0) = cell.zero_state(1, 3, 3);
            let h = tape.constant(h0);
            let c = tape.constant(c0);
            let (h1, _) = cell.step(tape, xv, (h, c), st);
            let s = tape.square(h1);
            tape.sum(s)
        },
        3e-2,
    );
}
