//! Plain-text weight serialisation.
//!
//! A deliberately simple, dependency-free format (one parameter per line):
//!
//! ```text
//! bikecap-params v1
//! <name> <d0>x<d1>x... <v0> <v1> ...
//! ```
//!
//! Floats are written with full round-trip precision via `{:?}` formatting.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use bikecap_autograd::ParamStore;
use bikecap_tensor::Tensor;

/// Magic header of the weight format.
const HEADER: &str = "bikecap-params v1";

/// Errors produced when loading weights.
#[derive(Debug)]
pub enum LoadParamsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not in the expected format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file's parameters do not match the store (missing name or wrong
    /// shape).
    Mismatch(String),
}

impl fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadParamsError::Io(e) => write!(f, "i/o error reading parameters: {e}"),
            LoadParamsError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            LoadParamsError::Mismatch(msg) => write!(f, "parameter mismatch: {msg}"),
        }
    }
}

impl std::error::Error for LoadParamsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadParamsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadParamsError {
    fn from(e: io::Error) -> Self {
        LoadParamsError::Io(e)
    }
}

/// Writes every parameter of `store` to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let mut out = io::BufWriter::new(fs::File::create(path)?);
    writeln!(out, "{HEADER}")?;
    for (_, name, value) in store.iter() {
        let dims: Vec<String> = value.shape().iter().map(|d| d.to_string()).collect();
        write!(out, "{name} {}", if dims.is_empty() { "scalar".to_string() } else { dims.join("x") })?;
        for v in value.as_slice() {
            write!(out, " {v:?}")?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Loads parameters from `path` into `store`, matching by name.
///
/// Every parameter in the file must exist in the store with the same shape;
/// store parameters absent from the file are left untouched.
///
/// # Errors
///
/// Returns [`LoadParamsError`] on I/O failure, malformed input, unknown names
/// or shape mismatches.
pub fn load_params(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), LoadParamsError> {
    let content = fs::read_to_string(path)?;
    let mut lines = content.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == HEADER => {}
        Some((_, l)) => {
            return Err(LoadParamsError::Parse {
                line: 1,
                message: format!("expected header '{HEADER}', found '{l}'"),
            })
        }
        None => {
            return Err(LoadParamsError::Parse {
                line: 1,
                message: "empty file".to_string(),
            })
        }
    }
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().ok_or_else(|| LoadParamsError::Parse {
            line: line_no,
            message: "missing parameter name".to_string(),
        })?;
        let shape_txt = parts.next().ok_or_else(|| LoadParamsError::Parse {
            line: line_no,
            message: "missing shape".to_string(),
        })?;
        let shape: Vec<usize> = if shape_txt == "scalar" {
            vec![]
        } else {
            shape_txt
                .split('x')
                .map(|d| {
                    d.parse::<usize>().map_err(|_| LoadParamsError::Parse {
                        line: line_no,
                        message: format!("invalid dimension '{d}'"),
                    })
                })
                .collect::<Result<_, _>>()?
        };
        let values: Vec<f32> = parts
            .map(|v| {
                v.parse::<f32>().map_err(|_| LoadParamsError::Parse {
                    line: line_no,
                    message: format!("invalid value '{v}'"),
                })
            })
            .collect::<Result<_, _>>()?;
        let expected: usize = shape.iter().product();
        if values.len() != expected {
            return Err(LoadParamsError::Parse {
                line: line_no,
                message: format!(
                    "shape {shape_txt} implies {expected} values, found {}",
                    values.len()
                ),
            });
        }
        let id = store
            .iter()
            .find(|(_, n, _)| *n == name)
            .map(|(id, _, _)| id)
            .ok_or_else(|| {
                LoadParamsError::Mismatch(format!("store has no parameter named '{name}'"))
            })?;
        if store.value(id).shape() != shape.as_slice() {
            return Err(LoadParamsError::Mismatch(format!(
                "parameter '{name}': file shape {:?} vs store shape {:?}",
                shape,
                store.value(id).shape()
            )));
        }
        store.set_value(id, Tensor::from_vec(values, &shape));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bikecap-serialize-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip_exact() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let a = store.add("layer.weight", Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng));
        let b = store.add("layer.bias", Tensor::randn(&[4], 0.0, 1.0, &mut rng));
        let path = tmp("roundtrip");
        save_params(&store, &path).unwrap();

        let mut restored = ParamStore::new();
        let a2 = restored.add("layer.weight", Tensor::zeros(&[3, 4]));
        let b2 = restored.add("layer.bias", Tensor::zeros(&[4]));
        load_params(&mut restored, &path).unwrap();
        assert_eq!(restored.value(a2), store.value(a));
        assert_eq!(restored.value(b2), store.value(b));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_wrong_header() {
        let path = tmp("badheader");
        fs::write(&path, "something else\n").unwrap();
        let mut store = ParamStore::new();
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { line: 1, .. }));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_unknown_parameter() {
        let path = tmp("unknown");
        fs::write(&path, format!("{HEADER}\nmystery 2 1.0 2.0\n")).unwrap();
        let mut store = ParamStore::new();
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Mismatch(_)));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let path = tmp("shape");
        fs::write(&path, format!("{HEADER}\np 3 1.0 2.0 3.0\n")).unwrap();
        let mut store = ParamStore::new();
        store.add("p", Tensor::zeros(&[2]));
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Mismatch(_)));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_value_count_mismatch() {
        let path = tmp("count");
        fs::write(&path, format!("{HEADER}\np 3 1.0 2.0\n")).unwrap();
        let mut store = ParamStore::new();
        store.add("p", Tensor::zeros(&[3]));
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { .. }));
        fs::remove_file(path).ok();
    }

    #[test]
    fn scalar_parameters_roundtrip() {
        let mut store = ParamStore::new();
        let s = store.add("temperature", Tensor::scalar(2.5));
        let path = tmp("scalar");
        save_params(&store, &path).unwrap();
        let mut restored = ParamStore::new();
        let s2 = restored.add("temperature", Tensor::scalar(0.0));
        load_params(&mut restored, &path).unwrap();
        assert_eq!(restored.value(s2).item(), store.value(s).item());
        fs::remove_file(path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = LoadParamsError::Parse {
            line: 7,
            message: "boom".into(),
        };
        let text = err.to_string();
        assert!(text.contains("line 7") && text.contains("boom"));
    }
}
