//! Plain-text weight serialisation.
//!
//! A deliberately simple, dependency-free format (one parameter per line):
//!
//! ```text
//! bikecap-params v3
//! meta config_hash=00000000deadbeef grid=16x12 history=8 horizon=4
//! body bytes=1234 crc32=9f0a3c11
//! <name> <d0>x<d1>x... <v0> <v1> ...
//! ```
//!
//! Floats are written with full round-trip precision via `{:?}` formatting.
//! Version 2 adds the optional `meta` line: a hash of the producing model's
//! configuration plus the grid/window shape, so a serving process can reject
//! a checkpoint that disagrees with the architecture it expects *before*
//! hitting a low-level tensor-shape mismatch. Version 3 adds the `body`
//! integrity line — the exact byte length of the parameter block (so a
//! truncated file is reported as [`LoadParamsError::Truncated`]) and a CRC32
//! over everything *except* the body line itself (so any bit flip in the
//! header, the meta line or the weights is reported as
//! [`LoadParamsError::ChecksumMismatch`], and a flip inside the body line
//! invalidates the declared length/CRC). Versions 1 and 2 still load,
//! without integrity checking.
//!
//! Version 4 adds per-tensor dtypes for quantized checkpoints (see
//! `bikecap-quant` and DESIGN.md Appendix J). Each parameter line becomes
//! `<name> <dtype> <shape> <payload>` where `dtype` is `f32` (payload:
//! decimal values as in v3), `f16` (payload: one hex token of
//! little-endian half bits), `q8_0` (natural-layout Q8_0 blocks) or
//! `q8_0t` (transposed-layout Q8_0 blocks, used for matmul weights). The
//! v3 `body` integrity line is retained unchanged, so truncation and bit
//! flips in quantized checkpoints surface the same typed errors. An
//! unknown dtype tag yields [`LoadParamsError::UnknownDtype`]; a binary
//! predating v4 rejects the unrecognised header with a typed
//! [`LoadParamsError::Parse`], never a garbled load.
//!
//! All writers are crash-atomic: content is rendered in memory, written to a
//! `<name>.<pid>.tmp` sibling, fsynced, and renamed over the destination, so
//! a kill at any instant leaves either the old file or the new file — never
//! a torn one. [`clean_stale_tmp`] sweeps orphaned temp files at startup.
//! The write path carries the `io.checkpoint.write` failpoint
//! (see `bikecap-faults`), which simulates a mid-write crash by leaving a
//! half-written temp file behind.
//!
//! Loading writes values **in place** through [`ParamStore::set_value`],
//! which is what lets a serving process hot-swap weights without
//! recompiling: `bikecap-ir` plans reference parameters by
//! [`bikecap_autograd::ParamId`] and
//! resolve them from the store at execution time, so a checkpoint load (or
//! an optimizer step) is immediately visible to every cached compiled plan
//! (DESIGN.md Appendix F).

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use bikecap_autograd::ParamStore;
use bikecap_quant::{F16Tensor, Q8Tensor, QuantEntry};
use bikecap_tensor::Tensor;

/// Magic header of the legacy (un-annotated) weight format.
const HEADER_V1: &str = "bikecap-params v1";

/// Magic header of the v2 weight format (adds the `meta` line).
const HEADER_V2: &str = "bikecap-params v2";

/// Magic header of the v3 weight format (adds the `body` integrity
/// line carrying the parameter-block byte length and content CRC32).
const HEADER_V3: &str = "bikecap-params v3";

/// Magic header of the quantized weight format (adds a per-tensor dtype
/// tag so f16/Q8_0 payloads can live beside f32 parameters).
const HEADER_V4: &str = "bikecap-params v4";

/// Lookup table for the IEEE 802.3 CRC32 polynomial (reflected 0xedb88320).
static CRC32_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) over a sequence of byte chunks, as if concatenated.
fn crc32(chunks: &[&[u8]]) -> u32 {
    let mut c = !0u32;
    for chunk in chunks {
        for &b in *chunk {
            c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// Versioned description of the model a checkpoint was saved from.
///
/// The `config_hash` is an opaque fingerprint computed by the model crate
/// over every architecture hyper-parameter; the remaining fields duplicate
/// the handful of values a server needs to rebuild a compatible model (and
/// to print actionable mismatch errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Fingerprint of the full model configuration.
    pub config_hash: u64,
    /// Grid extent `(rows, cols)`.
    pub grid: (usize, usize),
    /// Historical slots `h` consumed per window.
    pub history: usize,
    /// Future slots `p` predicted per window.
    pub horizon: usize,
}

impl fmt::Display for CheckpointMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config_hash={:016x} grid={}x{} history={} horizon={}",
            self.config_hash, self.grid.0, self.grid.1, self.history, self.horizon
        )
    }
}

impl CheckpointMeta {
    fn parse(line: &str, line_no: usize) -> Result<Self, LoadParamsError> {
        let mut hash = None;
        let mut grid = None;
        let mut history = None;
        let mut horizon = None;
        let bad = |message: String| LoadParamsError::Parse { line: line_no, message };
        for field in line.split_whitespace().skip(1) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| bad(format!("meta field '{field}' is not key=value")))?;
            match key {
                "config_hash" => {
                    hash = Some(u64::from_str_radix(value, 16).map_err(|_| {
                        bad(format!("invalid config_hash '{value}'"))
                    })?)
                }
                "grid" => {
                    let (h, w) = value
                        .split_once('x')
                        .ok_or_else(|| bad(format!("invalid grid '{value}'")))?;
                    grid = Some((
                        h.parse().map_err(|_| bad(format!("invalid grid rows '{h}'")))?,
                        w.parse().map_err(|_| bad(format!("invalid grid cols '{w}'")))?,
                    ));
                }
                "history" => {
                    history =
                        Some(value.parse().map_err(|_| bad(format!("invalid history '{value}'")))?)
                }
                "horizon" => {
                    horizon =
                        Some(value.parse().map_err(|_| bad(format!("invalid horizon '{value}'")))?)
                }
                // Unknown keys are ignored so future versions can extend the
                // meta line without breaking old readers.
                _ => {}
            }
        }
        let meta = CheckpointMeta {
            config_hash: hash.ok_or_else(|| bad("meta line missing config_hash".into()))?,
            grid: grid.ok_or_else(|| bad("meta line missing grid".into()))?,
            history: history.ok_or_else(|| bad("meta line missing history".into()))?,
            horizon: horizon.ok_or_else(|| bad("meta line missing horizon".into()))?,
        };
        meta.validate(line_no)?;
        Ok(meta)
    }

    /// Rejects headers declaring degenerate window extents: a grid below
    /// 2×2 or a zero history/horizon can never describe a constructible
    /// model, so the loader fails here — before any parameter data is read —
    /// instead of deep inside a tensor-shape mismatch.
    fn validate(&self, line_no: usize) -> Result<(), LoadParamsError> {
        let bad = |message: String| LoadParamsError::Parse { line: line_no, message };
        if self.grid.0 < 2 || self.grid.1 < 2 {
            return Err(bad(format!(
                "meta declares grid {}x{}, but a model grid must be at least 2x2",
                self.grid.0, self.grid.1
            )));
        }
        if self.history == 0 {
            return Err(bad("meta declares history=0, but history must be >= 1".into()));
        }
        if self.horizon == 0 {
            return Err(bad("meta declares horizon=0, but horizon must be >= 1".into()));
        }
        Ok(())
    }
}

/// Errors produced when loading weights.
#[derive(Debug)]
pub enum LoadParamsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not in the expected format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file's parameters do not match the store (missing name or wrong
    /// shape).
    Mismatch(String),
    /// The checkpoint's metadata disagrees with the configuration the caller
    /// expects (different architecture fingerprint or grid/window shape).
    ConfigMismatch {
        /// What the caller (e.g. a serving registry) expected.
        expected: CheckpointMeta,
        /// What the checkpoint file declares.
        found: CheckpointMeta,
    },
    /// The file ends before the parameter-block byte count its header
    /// declares — the classic signature of a crash mid-write or a partial
    /// copy.
    Truncated {
        /// Parameter-block bytes the `body` line declares.
        expected: u64,
        /// Parameter-block bytes actually present.
        found: u64,
    },
    /// The CRC32 stored in the header disagrees with the CRC32 computed over
    /// the file content — the file was corrupted after it was written.
    ChecksumMismatch {
        /// CRC32 declared in the `body` line.
        stored: u32,
        /// CRC32 computed over the file content.
        computed: u32,
    },
    /// A v4 parameter line carries a dtype tag this binary does not
    /// implement — the checkpoint was written by a newer producer.
    UnknownDtype {
        /// 1-based line number.
        line: usize,
        /// The unrecognised dtype tag.
        dtype: String,
    },
    /// A quantized parameter block failed to expand back to f32 — a corrupt
    /// payload, or the `quant.dequant.block` failpoint in chaos suites.
    Dequant {
        /// Name of the parameter that failed to expand.
        name: String,
        /// The underlying expansion error, rendered.
        message: String,
    },
}

impl fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadParamsError::Io(e) => write!(f, "i/o error reading parameters: {e}"),
            LoadParamsError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            LoadParamsError::Mismatch(msg) => write!(f, "parameter mismatch: {msg}"),
            LoadParamsError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint config mismatch: expected [{expected}], checkpoint declares [{found}]"
            ),
            LoadParamsError::Truncated { expected, found } => write!(
                f,
                "checkpoint truncated: header declares {expected} parameter bytes, file has {found}"
            ),
            LoadParamsError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: header declares crc32={stored:08x}, content hashes to {computed:08x}"
            ),
            LoadParamsError::UnknownDtype { line, dtype } => write!(
                f,
                "unknown dtype '{dtype}' on line {line}: this binary understands f32, f16, q8_0 and q8_0t"
            ),
            LoadParamsError::Dequant { name, message } => {
                write!(f, "parameter '{name}' failed to dequantize: {message}")
            }
        }
    }
}

impl std::error::Error for LoadParamsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadParamsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadParamsError {
    fn from(e: io::Error) -> Self {
        LoadParamsError::Io(e)
    }
}

/// Writes every parameter of `store` to `path` (v1, no metadata).
///
/// Prefer [`save_params_with_meta`] for checkpoints that will be consumed by
/// a serving process; this bare variant remains for raw parameter dumps.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    write_params(store, None, path)
}

/// Writes every parameter of `store` to `path` as a v2 checkpoint carrying
/// `meta` so loaders can verify architecture compatibility up front.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params_with_meta(
    store: &ParamStore,
    meta: &CheckpointMeta,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    write_params(store, Some(meta), path)
}

fn write_params(
    store: &ParamStore,
    meta: Option<&CheckpointMeta>,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let pairs: Vec<(&str, &Tensor)> =
        store.iter().map(|(_, name, value)| (name, value)).collect();
    atomic_write(path.as_ref(), &render_checkpoint(&pairs, meta))
}

/// Writes arbitrary named tensors (e.g. optimizer state) as a v3 checkpoint,
/// atomically. Loaded back with [`read_params`].
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_raw_params(pairs: &[(String, Tensor)], path: impl AsRef<Path>) -> io::Result<()> {
    let view: Vec<(&str, &Tensor)> = pairs.iter().map(|(n, t)| (n.as_str(), t)).collect();
    atomic_write(path.as_ref(), &render_checkpoint(&view, None))
}

/// Writes mixed-precision entries (see [`bikecap_quant::QuantEntry`]) as a
/// v4 checkpoint, atomically, carrying the same optional metadata and
/// `body` integrity line as v3. Loaded back with [`read_quant_params`]
/// (entries as stored) or any of the f32 loaders (entries dequantized).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_quant_params(
    pairs: &[(String, QuantEntry)],
    meta: Option<&CheckpointMeta>,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    atomic_write(path.as_ref(), &render_quant_checkpoint(pairs, meta))
}

/// Renders the v4 byte image: identical preamble machinery to
/// [`render_checkpoint`], parameter lines gaining a dtype tag and — for the
/// quantized dtypes — a single lowercase-hex payload token.
fn render_quant_checkpoint(
    pairs: &[(String, QuantEntry)],
    meta: Option<&CheckpointMeta>,
) -> Vec<u8> {
    use fmt::Write as _;
    let mut preamble = format!("{HEADER_V4}\n");
    if let Some(meta) = meta {
        let _ = writeln!(preamble, "meta {meta}");
    }
    let mut body = String::new();
    for (name, entry) in pairs {
        let dims: Vec<String> = entry.shape().iter().map(|d| d.to_string()).collect();
        let shape_txt =
            if dims.is_empty() { "scalar".to_string() } else { dims.join("x") };
        match entry {
            QuantEntry::F32(t) => {
                let _ = write!(body, "{name} f32 {shape_txt}");
                for v in t.as_slice() {
                    let _ = write!(body, " {v:?}");
                }
            }
            QuantEntry::F16(t) => {
                let _ = write!(body, "{name} f16 {shape_txt} ");
                hex_encode(&t.to_bytes(), &mut body);
            }
            QuantEntry::Q8(t) => {
                let tag = if t.transposed() { "q8_0t" } else { "q8_0" };
                let _ = write!(body, "{name} {tag} {shape_txt} ");
                hex_encode(&t.to_bytes(), &mut body);
            }
        }
        let _ = writeln!(body);
    }
    let crc = crc32(&[preamble.as_bytes(), body.as_bytes()]);
    let mut out = preamble.into_bytes();
    out.extend_from_slice(format!("body bytes={} crc32={crc:08x}\n", body.len()).as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// Appends `bytes` as lowercase hex to `out`.
fn hex_encode(bytes: &[u8], out: &mut String) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0x0f) as usize] as char);
    }
}

/// Decodes a lowercase/uppercase hex token back to bytes.
fn hex_decode(token: &str, line_no: usize) -> Result<Vec<u8>, LoadParamsError> {
    let bad = |message: String| LoadParamsError::Parse { line: line_no, message };
    if !token.len().is_multiple_of(2) {
        return Err(bad(format!("hex payload has odd length {}", token.len())));
    }
    let digits = token.as_bytes();
    let mut out = Vec::with_capacity(token.len() / 2);
    let nib = |d: u8| -> Result<u8, LoadParamsError> {
        match d {
            b'0'..=b'9' => Ok(d - b'0'),
            b'a'..=b'f' => Ok(d - b'a' + 10),
            b'A'..=b'F' => Ok(d - b'A' + 10),
            _ => Err(bad(format!("invalid hex digit '{}'", d as char))),
        }
    };
    for pair in digits.chunks_exact(2) {
        out.push((nib(pair[0])? << 4) | nib(pair[1])?);
    }
    Ok(out)
}

/// Renders the full v3 checkpoint byte image: header (+ optional meta),
/// `body` integrity line, parameter block. The CRC32 covers every byte
/// except the body line itself, so no single-bit flip anywhere in the file
/// can go unnoticed.
fn render_checkpoint(pairs: &[(&str, &Tensor)], meta: Option<&CheckpointMeta>) -> Vec<u8> {
    use fmt::Write as _;
    let mut preamble = format!("{HEADER_V3}\n");
    if let Some(meta) = meta {
        let _ = writeln!(preamble, "meta {meta}");
    }
    let mut body = String::new();
    for (name, value) in pairs {
        let dims: Vec<String> = value.shape().iter().map(|d| d.to_string()).collect();
        let _ = write!(
            body,
            "{name} {}",
            if dims.is_empty() { "scalar".to_string() } else { dims.join("x") }
        );
        for v in value.as_slice() {
            let _ = write!(body, " {v:?}");
        }
        let _ = writeln!(body);
    }
    let crc = crc32(&[preamble.as_bytes(), body.as_bytes()]);
    let mut out = preamble.into_bytes();
    out.extend_from_slice(format!("body bytes={} crc32={crc:08x}\n", body.len()).as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// The sibling temp path a checkpoint write stages into before renaming.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".{}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Crash-atomically replaces `path` with `bytes`: write to a `.tmp`
/// sibling, fsync, rename over the destination, then best-effort fsync the
/// directory. A kill at any instant leaves either the previous file intact
/// or the complete new one — plus at worst an orphaned `.tmp` that
/// [`clean_stale_tmp`] sweeps on the next startup.
///
/// Carries the `io.checkpoint.write` failpoint: when it fires, half the
/// payload is written to the temp file and the injected error is returned,
/// emulating a crash mid-write (the destination is untouched).
///
/// # Errors
///
/// Returns any underlying I/O error; the temp file is removed on real
/// failures.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let mut out = fs::File::create(&tmp)?;
    if let Some(fault) = bikecap_faults::hit("io.checkpoint.write") {
        // Simulated crash: leave a torn temp file behind, exactly like a
        // real kill -9 would, and surface the injected error.
        let _ = out.write_all(&bytes[..bytes.len() / 2]);
        let _ = out.sync_all();
        return Err(fault.into_io());
    }
    let result = out
        .write_all(bytes)
        .and_then(|()| out.sync_all())
        .and_then(|()| fs::rename(&tmp, path));
    match result {
        Ok(()) => {
            // Persist the rename itself. Failure here is not fatal: the
            // data is durable, only the directory entry might replay.
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                if let Ok(d) = fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(())
        }
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Removes orphaned checkpoint temp files (`*.tmp`) left in `dir` by a
/// crashed writer. Returns the paths removed. Call at process startup
/// before reading or writing checkpoints in `dir`.
///
/// # Errors
///
/// Returns an error only if `dir` cannot be listed; unremovable entries are
/// skipped.
pub fn clean_stale_tmp(dir: impl AsRef<Path>) -> io::Result<Vec<PathBuf>> {
    let mut removed = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let is_tmp = path
            .extension()
            .is_some_and(|e| e == "tmp")
            && entry.file_type().map(|t| t.is_file()).unwrap_or(false);
        if is_tmp && fs::remove_file(&path).is_ok() {
            removed.push(path);
        }
    }
    Ok(removed)
}

/// Reads the [`CheckpointMeta`] of the checkpoint at `path` without touching
/// any parameter data. Returns `None` for v1 files, which carry no metadata.
/// For v3 files the content CRC is verified first, so corruption is caught
/// here rather than at load time.
///
/// # Errors
///
/// Returns [`LoadParamsError`] on I/O failure, a malformed header, or a
/// failed integrity check.
pub fn read_meta(path: impl AsRef<Path>) -> Result<Option<CheckpointMeta>, LoadParamsError> {
    let data = fs::read(path)?;
    open_checkpoint(&data).map(|opened| opened.meta)
}

/// A checkpoint whose preamble has been parsed and (for v3) whose integrity
/// has been verified; `body` is the raw parameter block.
struct OpenedCheckpoint<'a> {
    meta: Option<CheckpointMeta>,
    body: &'a str,
    /// File lines preceding the parameter block (header, meta, body lines),
    /// so parse errors report absolute line numbers.
    preamble_lines: usize,
    /// True for v4 files, whose parameter lines carry per-tensor dtype tags.
    quantized: bool,
}

fn line_str(bytes: &[u8], line: usize) -> Result<&str, LoadParamsError> {
    std::str::from_utf8(bytes).map_err(|_| LoadParamsError::Parse {
        line,
        message: "line is not valid UTF-8".to_string(),
    })
}

/// Returns `(end_of_line, start_of_next_line)` byte offsets from `start`.
fn line_end(data: &[u8], start: usize) -> (usize, usize) {
    match data[start..].iter().position(|&b| b == b'\n') {
        Some(i) => (start + i, start + i + 1),
        None => (data.len(), data.len()),
    }
}

/// Parses the preamble of any supported version and, for v3, verifies the
/// declared byte length and CRC32 before exposing the parameter block.
fn open_checkpoint(data: &[u8]) -> Result<OpenedCheckpoint<'_>, LoadParamsError> {
    if data.is_empty() {
        return Err(LoadParamsError::Parse {
            line: 1,
            message: "empty file".to_string(),
        });
    }
    let (header_end, pos) = line_end(data, 0);
    let header = line_str(&data[..header_end], 1)?;
    match header.trim() {
        h if h == HEADER_V1 => Ok(OpenedCheckpoint {
            meta: None,
            body: line_str(&data[pos..], 2)?,
            preamble_lines: 1,
            quantized: false,
        }),
        h if h == HEADER_V2 => {
            let (meta_end, next) = line_end(data, pos);
            let meta_line = line_str(&data[pos..meta_end], 2)?;
            if pos >= data.len() || !meta_line.trim_start().starts_with("meta ") {
                return Err(LoadParamsError::Parse {
                    line: 2,
                    message: "v2 checkpoint missing 'meta' line".to_string(),
                });
            }
            Ok(OpenedCheckpoint {
                meta: Some(CheckpointMeta::parse(meta_line.trim(), 2)?),
                body: line_str(&data[next..], 3)?,
                preamble_lines: 2,
                quantized: false,
            })
        }
        h if h == HEADER_V3 => open_integrity(data, pos, false),
        h if h == HEADER_V4 => open_integrity(data, pos, true),
        other => Err(LoadParamsError::Parse {
            line: 1,
            message: format!(
                "expected header '{HEADER_V1}', '{HEADER_V2}', '{HEADER_V3}' or '{HEADER_V4}', found '{other}'"
            ),
        }),
    }
}

/// Shared v3/v4 preamble handling: optional `meta` line, mandatory `body`
/// integrity line, declared-length and CRC32 verification over everything
/// except the body line itself. `pos` is the byte offset just past the
/// header line.
fn open_integrity(
    data: &[u8],
    mut pos: usize,
    quantized: bool,
) -> Result<OpenedCheckpoint<'_>, LoadParamsError> {
    let mut line_no = 2;
    let (mut eol, mut next) = line_end(data, pos);
    let mut meta = None;
    if line_str(&data[pos..eol], line_no)?.trim_start().starts_with("meta ") {
        meta = Some(CheckpointMeta::parse(
            line_str(&data[pos..eol], line_no)?.trim(),
            line_no,
        )?);
        pos = next;
        line_no += 1;
        (eol, next) = line_end(data, pos);
    }
    // `pos` now marks the end of the CRC-covered preamble and the
    // start of the body line.
    let body_line = line_str(&data[pos..eol], line_no)?;
    let (expected_bytes, stored_crc) = parse_body_line(body_line, line_no)?;
    let payload = &data[next..];
    if (payload.len() as u64) < expected_bytes {
        return Err(LoadParamsError::Truncated {
            expected: expected_bytes,
            found: payload.len() as u64,
        });
    }
    if (payload.len() as u64) > expected_bytes {
        return Err(LoadParamsError::Parse {
            line: line_no,
            message: format!(
                "trailing data: body declares {expected_bytes} bytes, file has {}",
                payload.len()
            ),
        });
    }
    let computed = crc32(&[&data[..pos], payload]);
    if computed != stored_crc {
        return Err(LoadParamsError::ChecksumMismatch {
            stored: stored_crc,
            computed,
        });
    }
    Ok(OpenedCheckpoint {
        meta,
        body: line_str(payload, line_no + 1)?,
        preamble_lines: line_no,
        quantized,
    })
}

/// Parses `body bytes=N crc32=HEX` into `(N, crc)`.
fn parse_body_line(line: &str, line_no: usize) -> Result<(u64, u32), LoadParamsError> {
    let bad = |message: String| LoadParamsError::Parse { line: line_no, message };
    let trimmed = line.trim();
    if trimmed != "body" && !trimmed.starts_with("body ") {
        return Err(bad("v3 checkpoint missing 'body' line".to_string()));
    }
    let mut bytes = None;
    let mut crc = None;
    for field in trimmed.split_whitespace().skip(1) {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| bad(format!("body field '{field}' is not key=value")))?;
        match key {
            "bytes" => {
                bytes = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| bad(format!("invalid body byte count '{value}'")))?,
                )
            }
            "crc32" => {
                crc = Some(
                    u32::from_str_radix(value, 16)
                        .map_err(|_| bad(format!("invalid body crc32 '{value}'")))?,
                )
            }
            // Unknown keys are ignored so future versions can extend the
            // body line without breaking old readers.
            _ => {}
        }
    }
    Ok((
        bytes.ok_or_else(|| bad("body line missing bytes".to_string()))?,
        crc.ok_or_else(|| bad("body line missing crc32".to_string()))?,
    ))
}

/// Loads parameters from `path` into `store`, matching by name. Accepts both
/// v1 and v2 checkpoints; any v2 metadata is ignored (use
/// [`load_params_checked`] to enforce it).
///
/// Every parameter in the file must exist in the store with the same shape;
/// store parameters absent from the file are left untouched.
///
/// # Errors
///
/// Returns [`LoadParamsError`] on I/O failure, malformed input, unknown names
/// or shape mismatches.
pub fn load_params(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), LoadParamsError> {
    load_params_impl(store, path, None)
}

/// Like [`load_params`], but first verifies the checkpoint's metadata against
/// `expected`, failing with [`LoadParamsError::ConfigMismatch`] *before* any
/// parameter is modified if the architectures disagree. v1 checkpoints carry
/// no metadata and are loaded unchecked (per-parameter shape checks still
/// apply).
///
/// # Errors
///
/// Returns [`LoadParamsError`] on I/O failure, malformed input, metadata
/// disagreement, unknown names or shape mismatches.
pub fn load_params_checked(
    store: &mut ParamStore,
    path: impl AsRef<Path>,
    expected: &CheckpointMeta,
) -> Result<(), LoadParamsError> {
    load_params_impl(store, path, Some(expected))
}

fn load_params_impl(
    store: &mut ParamStore,
    path: impl AsRef<Path>,
    expected: Option<&CheckpointMeta>,
) -> Result<(), LoadParamsError> {
    let data = fs::read(path)?;
    let opened = open_checkpoint(&data)?;
    if let (Some(expected), Some(found)) = (expected, opened.meta) {
        if *expected != found {
            return Err(LoadParamsError::ConfigMismatch {
                expected: *expected,
                found,
            });
        }
    }
    for (name, entry) in parse_entries(&opened)? {
        let id = store
            .iter()
            .find(|(_, n, _)| *n == name)
            .map(|(id, _, _)| id)
            .ok_or_else(|| {
                LoadParamsError::Mismatch(format!("store has no parameter named '{name}'"))
            })?;
        if store.value(id).shape() != entry.shape() {
            return Err(LoadParamsError::Mismatch(format!(
                "parameter '{name}': file shape {:?} vs store shape {:?}",
                entry.shape(),
                store.value(id).shape()
            )));
        }
        store.set_value(id, expand_entry(&name, entry)?);
    }
    Ok(())
}

/// Parses the parameter block of an opened checkpoint into mixed-precision
/// entries; legacy (v1–v3) bodies come back wrapped as [`QuantEntry::F32`].
fn parse_entries(opened: &OpenedCheckpoint<'_>) -> Result<Vec<(String, QuantEntry)>, LoadParamsError> {
    if opened.quantized {
        parse_quant_params(opened.body, opened.preamble_lines)
    } else {
        Ok(parse_params(opened.body, opened.preamble_lines)?
            .into_iter()
            .map(|(n, t)| (n, QuantEntry::F32(t)))
            .collect())
    }
}

/// Widens one entry to f32, mapping dequantization failures (corrupt
/// payloads, the `quant.dequant.block` failpoint) to the typed
/// [`LoadParamsError::Dequant`].
fn expand_entry(name: &str, entry: QuantEntry) -> Result<Tensor, LoadParamsError> {
    entry.dequantize().map_err(|e| LoadParamsError::Dequant {
        name: name.to_string(),
        message: e.to_string(),
    })
}

/// Everything a checkpoint holds: the optional config header and the named
/// tensors in file order.
pub type RawCheckpoint = (Option<CheckpointMeta>, Vec<(String, Tensor)>);

/// Reads every named tensor in the checkpoint at `path`, without needing a
/// pre-populated [`ParamStore`] — used for optimizer-state files whose
/// entries (slot names, step scalars) are not model parameters.
///
/// # Errors
///
/// Returns [`LoadParamsError`] on I/O failure, malformed input, or a failed
/// integrity check.
pub fn read_params(path: impl AsRef<Path>) -> Result<RawCheckpoint, LoadParamsError> {
    let data = fs::read(path)?;
    let opened = open_checkpoint(&data)?;
    let params = parse_entries(&opened)?
        .into_iter()
        .map(|(name, entry)| expand_entry(&name, entry).map(|t| (name, t)))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((opened.meta, params))
}

/// Everything a quantized checkpoint holds: the optional config header and
/// the named mixed-precision entries in file order.
pub type QuantCheckpoint = (Option<CheckpointMeta>, Vec<(String, QuantEntry)>);

/// Reads every entry in the checkpoint at `path` *as stored*: v4 files come
/// back with their quantized tensors intact (so a loader can both populate
/// f32 shadows and register quantized kernels), older versions come back as
/// [`QuantEntry::F32`].
///
/// # Errors
///
/// Returns [`LoadParamsError`] on I/O failure, malformed input, an unknown
/// dtype tag, or a failed integrity check.
pub fn read_quant_params(path: impl AsRef<Path>) -> Result<QuantCheckpoint, LoadParamsError> {
    let data = fs::read(path)?;
    let opened = open_checkpoint(&data)?;
    let entries = parse_entries(&opened)?;
    Ok((opened.meta, entries))
}

/// Parses the parameter block. `preamble_lines` is how many file lines
/// precede it, so errors report absolute line numbers.
fn parse_params(
    body: &str,
    preamble_lines: usize,
) -> Result<Vec<(String, Tensor)>, LoadParamsError> {
    let mut out = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        let line_no = preamble_lines + idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().ok_or_else(|| LoadParamsError::Parse {
            line: line_no,
            message: "missing parameter name".to_string(),
        })?;
        let shape_txt = parts.next().ok_or_else(|| LoadParamsError::Parse {
            line: line_no,
            message: "missing shape".to_string(),
        })?;
        let shape: Vec<usize> = if shape_txt == "scalar" {
            vec![]
        } else {
            shape_txt
                .split('x')
                .map(|d| {
                    d.parse::<usize>().map_err(|_| LoadParamsError::Parse {
                        line: line_no,
                        message: format!("invalid dimension '{d}'"),
                    })
                })
                .collect::<Result<_, _>>()?
        };
        let values: Vec<f32> = parts
            .map(|v| {
                v.parse::<f32>().map_err(|_| LoadParamsError::Parse {
                    line: line_no,
                    message: format!("invalid value '{v}'"),
                })
            })
            .collect::<Result<_, _>>()?;
        let expected: usize = shape.iter().product();
        if values.len() != expected {
            return Err(LoadParamsError::Parse {
                line: line_no,
                message: format!(
                    "shape {shape_txt} implies {expected} values, found {}",
                    values.len()
                ),
            });
        }
        out.push((name.to_string(), Tensor::from_vec(values, &shape)));
    }
    Ok(out)
}

/// Parses a v4 parameter block: `<name> <dtype> <shape> <payload>` per line,
/// with `f32` payloads in the v3 decimal grammar and the quantized dtypes
/// carrying one hex token of their `to_bytes` serialisation.
fn parse_quant_params(
    body: &str,
    preamble_lines: usize,
) -> Result<Vec<(String, QuantEntry)>, LoadParamsError> {
    let mut out = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        let line_no = preamble_lines + idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let bad = |message: String| LoadParamsError::Parse { line: line_no, message };
        let mut parts = line.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| bad("missing parameter name".to_string()))?;
        let dtype = parts.next().ok_or_else(|| bad("missing dtype".to_string()))?;
        let shape_txt = parts.next().ok_or_else(|| bad("missing shape".to_string()))?;
        let shape: Vec<usize> = if shape_txt == "scalar" {
            vec![]
        } else {
            shape_txt
                .split('x')
                .map(|d| {
                    d.parse::<usize>()
                        .map_err(|_| bad(format!("invalid dimension '{d}'")))
                })
                .collect::<Result<_, _>>()?
        };
        let entry = match dtype {
            "f32" => {
                let values: Vec<f32> = parts
                    .map(|v| {
                        v.parse::<f32>().map_err(|_| bad(format!("invalid value '{v}'")))
                    })
                    .collect::<Result<_, _>>()?;
                let expected: usize = shape.iter().product();
                if values.len() != expected {
                    return Err(bad(format!(
                        "shape {shape_txt} implies {expected} values, found {}",
                        values.len()
                    )));
                }
                QuantEntry::F32(Tensor::from_vec(values, &shape))
            }
            "f16" | "q8_0" | "q8_0t" => {
                let token = parts
                    .next()
                    .ok_or_else(|| bad(format!("{dtype} entry missing its hex payload")))?;
                if parts.next().is_some() {
                    return Err(bad(format!("{dtype} entry has trailing tokens")));
                }
                let bytes = hex_decode(token, line_no)?;
                match dtype {
                    "f16" => QuantEntry::F16(
                        F16Tensor::from_bytes(&shape, &bytes).map_err(bad)?,
                    ),
                    tag => QuantEntry::Q8(
                        Q8Tensor::from_bytes(&shape, tag == "q8_0t", &bytes).map_err(bad)?,
                    ),
                }
            }
            other => {
                return Err(LoadParamsError::UnknownDtype {
                    line: line_no,
                    dtype: other.to_string(),
                })
            }
        };
        out.push((name.to_string(), entry));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bikecap-serialize-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip_exact() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let a = store.add("layer.weight", Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng));
        let b = store.add("layer.bias", Tensor::randn(&[4], 0.0, 1.0, &mut rng));
        let path = tmp("roundtrip");
        save_params(&store, &path).unwrap();

        let mut restored = ParamStore::new();
        let a2 = restored.add("layer.weight", Tensor::zeros(&[3, 4]));
        let b2 = restored.add("layer.bias", Tensor::zeros(&[4]));
        load_params(&mut restored, &path).unwrap();
        assert_eq!(restored.value(a2), store.value(a));
        assert_eq!(restored.value(b2), store.value(b));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_wrong_header() {
        let path = tmp("badheader");
        fs::write(&path, "something else\n").unwrap();
        let mut store = ParamStore::new();
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { line: 1, .. }));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_unknown_parameter() {
        let path = tmp("unknown");
        fs::write(&path, format!("{HEADER_V1}\nmystery 2 1.0 2.0\n")).unwrap();
        let mut store = ParamStore::new();
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Mismatch(_)));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let path = tmp("shape");
        fs::write(&path, format!("{HEADER_V1}\np 3 1.0 2.0 3.0\n")).unwrap();
        let mut store = ParamStore::new();
        store.add("p", Tensor::zeros(&[2]));
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Mismatch(_)));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_value_count_mismatch() {
        let path = tmp("count");
        fs::write(&path, format!("{HEADER_V1}\np 3 1.0 2.0\n")).unwrap();
        let mut store = ParamStore::new();
        store.add("p", Tensor::zeros(&[3]));
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { .. }));
        fs::remove_file(path).ok();
    }

    #[test]
    fn scalar_parameters_roundtrip() {
        let mut store = ParamStore::new();
        let s = store.add("temperature", Tensor::scalar(2.5));
        let path = tmp("scalar");
        save_params(&store, &path).unwrap();
        let mut restored = ParamStore::new();
        let s2 = restored.add("temperature", Tensor::scalar(0.0));
        load_params(&mut restored, &path).unwrap();
        assert_eq!(restored.value(s2).item(), store.value(s).item());
        fs::remove_file(path).ok();
    }

    fn sample_meta() -> CheckpointMeta {
        CheckpointMeta {
            config_hash: 0xdead_beef_cafe_f00d,
            grid: (16, 12),
            history: 8,
            horizon: 4,
        }
    }

    #[test]
    fn v2_meta_roundtrips() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![1.5, -2.5], &[2]));
        let path = tmp("v2meta");
        let meta = sample_meta();
        save_params_with_meta(&store, &meta, &path).unwrap();
        assert_eq!(read_meta(&path).unwrap(), Some(meta));

        let mut restored = ParamStore::new();
        let id = restored.add("w", Tensor::zeros(&[2]));
        load_params_checked(&mut restored, &path, &meta).unwrap();
        assert_eq!(restored.value(id).as_slice(), &[1.5, -2.5]);
        fs::remove_file(path).ok();
    }

    #[test]
    fn v1_files_have_no_meta_and_load_unchecked() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![3.0], &[1]));
        let path = tmp("v1nometa");
        save_params(&store, &path).unwrap();
        assert_eq!(read_meta(&path).unwrap(), None);
        // Checked load of a v1 file skips the meta check entirely.
        let mut restored = ParamStore::new();
        restored.add("w", Tensor::zeros(&[1]));
        load_params_checked(&mut restored, &path, &sample_meta()).unwrap();
        fs::remove_file(path).ok();
    }

    #[test]
    fn checked_load_rejects_config_mismatch_before_mutating() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![7.0], &[1]));
        let path = tmp("cfgmismatch");
        save_params_with_meta(&store, &sample_meta(), &path).unwrap();

        let mut restored = ParamStore::new();
        let id = restored.add("w", Tensor::zeros(&[1]));
        let expected = CheckpointMeta {
            horizon: 8,
            ..sample_meta()
        };
        let err = load_params_checked(&mut restored, &path, &expected).unwrap_err();
        assert!(
            matches!(err, LoadParamsError::ConfigMismatch { .. }),
            "expected ConfigMismatch, got {err}"
        );
        let text = err.to_string();
        assert!(text.contains("horizon=8") && text.contains("horizon=4"), "{text}");
        // The store must be untouched: the meta gate fires before any write.
        assert_eq!(restored.value(id).as_slice(), &[0.0]);
        fs::remove_file(path).ok();
    }

    #[test]
    fn v2_without_meta_line_is_rejected() {
        let path = tmp("v2nometa");
        fs::write(&path, format!("{HEADER_V2}\np scalar 1.0\n")).unwrap();
        let mut store = ParamStore::new();
        store.add("p", Tensor::scalar(0.0));
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { line: 2, .. }));
        fs::remove_file(path).ok();
    }

    #[test]
    fn meta_line_ignores_unknown_keys() {
        let line = "meta config_hash=00000000000000ff grid=4x5 history=8 horizon=2 sharding=none";
        let meta = CheckpointMeta::parse(line, 2).unwrap();
        assert_eq!(meta.config_hash, 0xff);
        assert_eq!(meta.grid, (4, 5));
    }

    #[test]
    fn meta_with_degenerate_extents_is_rejected() {
        for bad in [
            "meta config_hash=ff grid=0x8 history=8 horizon=4",
            "meta config_hash=ff grid=8x1 history=8 horizon=4",
            "meta config_hash=ff grid=8x8 history=0 horizon=4",
            "meta config_hash=ff grid=8x8 history=8 horizon=0",
        ] {
            let err = CheckpointMeta::parse(bad, 2).unwrap_err();
            assert!(
                matches!(err, LoadParamsError::Parse { line: 2, .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn load_rejects_degenerate_meta_before_mutating() {
        let path = tmp("degenerate-meta");
        fs::write(
            &path,
            format!("{HEADER_V2}\nmeta config_hash=ff grid=8x8 history=8 horizon=0\np scalar 1.0\n"),
        )
        .unwrap();
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::scalar(0.0));
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { line: 2, .. }), "{err}");
        assert_eq!(store.value(id).item(), 0.0);
        fs::remove_file(path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = LoadParamsError::Parse {
            line: 7,
            message: "boom".into(),
        };
        let text = err.to_string();
        assert!(text.contains("line 7") && text.contains("boom"));
        let err = LoadParamsError::Truncated { expected: 100, found: 64 };
        let text = err.to_string();
        assert!(text.contains("100") && text.contains("64"), "{text}");
        let err = LoadParamsError::ChecksumMismatch { stored: 0xdead, computed: 0xbeef };
        let text = err.to_string();
        assert!(text.contains("0000dead") && text.contains("0000beef"), "{text}");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(&[b"123456789"]), 0xcbf4_3926);
        // Chunked input hashes identically to concatenated input.
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xcbf4_3926);
    }

    fn sample_file(name: &str) -> std::path::PathBuf {
        let mut store = ParamStore::new();
        store.add("layer.weight", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        store.add("layer.bias", Tensor::from_vec(vec![-0.5, 0.5], &[2]));
        let path = tmp(name);
        save_params_with_meta(&store, &sample_meta(), &path).unwrap();
        path
    }

    #[test]
    fn v3_truncation_yields_truncated_error() {
        let path = sample_file("trunc");
        let full = fs::read(&path).unwrap();
        // Cut inside the parameter block: must be Truncated, never a load.
        let cut = full.len() - 10;
        fs::write(&path, &full[..cut]).unwrap();
        let err = read_meta(&path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Truncated { .. }), "{err}");
        fs::remove_file(path).ok();
    }

    #[test]
    fn v3_truncation_at_every_64_byte_boundary_yields_typed_error() {
        let path = sample_file("trunc-sweep");
        let full = fs::read(&path).unwrap();
        let mut store = ParamStore::new();
        store.add("layer.weight", Tensor::zeros(&[2, 2]));
        store.add("layer.bias", Tensor::zeros(&[2]));
        // Cut the file at every 64-byte boundary (and the final partial
        // block): a torn write of any length must surface a typed error,
        // never a panic and never a silent partial load.
        for cut in (0..full.len()).step_by(64).chain([full.len() - 1]) {
            fs::write(&path, &full[..cut]).unwrap();
            let err = load_params(&mut store, &path).unwrap_err();
            assert!(
                matches!(
                    err,
                    LoadParamsError::Truncated { .. }
                        | LoadParamsError::Parse { .. }
                        | LoadParamsError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
        fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_yields_typed_error_not_panic() {
        let path = tmp("empty");
        fs::write(&path, b"").unwrap();
        let err = read_meta(&path).unwrap_err();
        assert!(
            matches!(err, LoadParamsError::Truncated { .. } | LoadParamsError::Parse { .. }),
            "{err}"
        );
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(&[1]));
        assert!(load_params(&mut store, &path).is_err());
        fs::remove_file(path).ok();
    }

    #[test]
    fn v3_bit_flip_anywhere_yields_typed_error() {
        let path = sample_file("bitflip");
        let full = fs::read(&path).unwrap();
        for byte in 0..full.len() {
            let mut corrupt = full.clone();
            corrupt[byte] ^= 0x01;
            fs::write(&path, &corrupt).unwrap();
            let mut store = ParamStore::new();
            store.add("layer.weight", Tensor::zeros(&[2, 2]));
            store.add("layer.bias", Tensor::zeros(&[2]));
            // Every flip must surface a typed error — a flip can never
            // produce a silent, successful load of different content.
            let err = load_params(&mut store, &path);
            assert!(err.is_err(), "flip at byte {byte} loaded silently");
        }
        fs::remove_file(path).ok();
    }

    #[test]
    fn v3_trailing_garbage_is_rejected() {
        let path = sample_file("trailing");
        let mut full = fs::read(&path).unwrap();
        full.extend_from_slice(b"extra 2 9.0 9.0\n");
        fs::write(&path, &full).unwrap();
        let err = read_meta(&path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { .. }), "{err}");
        fs::remove_file(path).ok();
    }

    #[test]
    fn writes_are_atomic_and_leave_no_tmp() {
        let path = tmp("atomic");
        let dir = path.parent().unwrap();
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![1.0], &[1]));
        save_params(&store, &path).unwrap();
        let stale: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let n = e.file_name().to_string_lossy().to_string();
                n.starts_with("bikecap-serialize-atomic") && n.ends_with(".tmp")
            })
            .collect();
        assert!(stale.is_empty(), "temp file left behind: {stale:?}");
        fs::remove_file(path).ok();
    }

    #[test]
    fn clean_stale_tmp_removes_only_tmp_files() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("bikecap-stale-tmp-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("model.ckpt"), b"keep").unwrap();
        fs::write(dir.join(format!("model.ckpt.{}.tmp", std::process::id())), b"stale").unwrap();
        let removed = clean_stale_tmp(&dir).unwrap();
        assert_eq!(removed.len(), 1);
        assert!(dir.join("model.ckpt").exists());
        assert!(!removed[0].exists());
        fs::remove_dir_all(dir).ok();
    }

    fn sample_quant_entries() -> Vec<(String, QuantEntry)> {
        use bikecap_quant::{quantize_pairs, QuantFormat};
        let mut rng = StdRng::seed_from_u64(41);
        let pairs = vec![
            (
                "enc.conv.weight".to_string(),
                Tensor::randn(&[4, 3, 3, 3, 3], 0.0, 0.4, &mut rng),
            ),
            ("enc.conv.bias".to_string(), Tensor::randn(&[1, 4, 1, 1, 1], 0.0, 0.1, &mut rng)),
            ("head.weight".to_string(), Tensor::randn(&[6, 5], 0.0, 0.3, &mut rng)),
        ];
        quantize_pairs(&pairs, QuantFormat::Q8_0)
    }

    fn sample_quant_file(name: &str) -> std::path::PathBuf {
        let path = tmp(name);
        save_quant_params(&sample_quant_entries(), Some(&sample_meta()), &path).unwrap();
        path
    }

    #[test]
    fn v4_entries_roundtrip_exactly() {
        let entries = sample_quant_entries();
        let path = sample_quant_file("v4roundtrip");
        let (meta, loaded) = read_quant_params(&path).unwrap();
        assert_eq!(meta, Some(sample_meta()));
        assert_eq!(loaded, entries);
        // The conv weight must be Q8, the bias f16, the matmul weight
        // transposed Q8 — the on-disk dtype tags carry the full policy.
        assert!(matches!(&loaded[0].1, QuantEntry::Q8(q) if !q.transposed()));
        assert!(matches!(&loaded[1].1, QuantEntry::F16(_)));
        assert!(matches!(&loaded[2].1, QuantEntry::Q8(q) if q.transposed()));
        fs::remove_file(path).ok();
    }

    #[test]
    fn v4_loads_into_store_via_dequantized_shadows() {
        let entries = sample_quant_entries();
        let path = sample_quant_file("v4shadow");
        let mut store = ParamStore::new();
        let w = store.add("enc.conv.weight", Tensor::zeros(&[4, 3, 3, 3, 3]));
        store.add("enc.conv.bias", Tensor::zeros(&[1, 4, 1, 1, 1]));
        store.add("head.weight", Tensor::zeros(&[6, 5]));
        load_params_checked(&mut store, &path, &sample_meta()).unwrap();
        let want = entries[0].1.dequantize().unwrap();
        assert_eq!(store.value(w).as_slice(), want.as_slice());
        fs::remove_file(path).ok();
    }

    #[test]
    fn v4_truncation_and_bit_flips_yield_typed_errors() {
        let path = sample_quant_file("v4corrupt");
        let full = fs::read(&path).unwrap();
        for cut in (0..full.len()).step_by(64).chain([full.len() - 1]) {
            fs::write(&path, &full[..cut]).unwrap();
            let err = read_quant_params(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    LoadParamsError::Truncated { .. }
                        | LoadParamsError::Parse { .. }
                        | LoadParamsError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
        for byte in (0..full.len()).step_by(7) {
            let mut corrupt = full.clone();
            corrupt[byte] ^= 0x01;
            fs::write(&path, &corrupt).unwrap();
            assert!(
                read_quant_params(&path).is_err(),
                "flip at byte {byte} loaded silently"
            );
        }
        fs::remove_file(path).ok();
    }

    #[test]
    fn v4_unknown_dtype_yields_typed_error() {
        // Hand-build a v4 file whose single entry uses a dtype this binary
        // does not implement, with a valid integrity line.
        let body = "w q4_k 2x2 00000000\n";
        let preamble = format!("{HEADER_V4}\n");
        let crc = crc32(&[preamble.as_bytes(), body.as_bytes()]);
        let path = tmp("v4unknown");
        fs::write(
            &path,
            format!("{preamble}body bytes={} crc32={crc:08x}\n{body}", body.len()),
        )
        .unwrap();
        let err = read_quant_params(&path).unwrap_err();
        assert!(
            matches!(err, LoadParamsError::UnknownDtype { line: 3, ref dtype } if dtype == "q4_k"),
            "{err}"
        );
        assert!(err.to_string().contains("q4_k"), "{err}");
        fs::remove_file(path).ok();
    }

    #[test]
    fn f32_loaders_widen_v4_files() {
        let entries = sample_quant_entries();
        let path = sample_quant_file("v4widen");
        let (_, widened) = read_params(&path).unwrap();
        for ((name, entry), (wname, tensor)) in entries.iter().zip(&widened) {
            assert_eq!(name, wname);
            assert_eq!(entry.dequantize().unwrap().as_slice(), tensor.as_slice());
        }
        fs::remove_file(path).ok();
    }

    #[test]
    fn q8_checkpoint_is_a_fraction_of_f32_size() {
        use bikecap_quant::{quantize_pairs, QuantFormat};
        let mut rng = StdRng::seed_from_u64(17);
        let pairs = vec![(
            "enc.conv.weight".to_string(),
            Tensor::randn(&[8, 4, 3, 5, 5], 0.0, 0.5, &mut rng),
        )];
        let f32_path = tmp("sizef32");
        save_raw_params(&pairs, &f32_path).unwrap();
        let q8_path = tmp("sizeq8");
        save_quant_params(&quantize_pairs(&pairs, QuantFormat::Q8_0), None, &q8_path).unwrap();
        let f32_len = fs::metadata(&f32_path).unwrap().len();
        let q8_len = fs::metadata(&q8_path).unwrap().len();
        assert!(
            (q8_len as f64) <= 0.30 * f32_len as f64,
            "q8 checkpoint is {q8_len} bytes, f32 is {f32_len}"
        );
        fs::remove_file(f32_path).ok();
        fs::remove_file(q8_path).ok();
    }

    #[test]
    fn raw_params_roundtrip_dynamically() {
        let pairs = vec![
            ("adam.t".to_string(), Tensor::scalar(17.0)),
            ("adam.m.w".to_string(), Tensor::from_vec(vec![0.25, -0.75], &[2])),
        ];
        let path = tmp("raw");
        save_raw_params(&pairs, &path).unwrap();
        let (meta, loaded) = read_params(&path).unwrap();
        assert_eq!(meta, None);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, "adam.t");
        assert_eq!(loaded[0].1.item(), 17.0);
        assert_eq!(loaded[1].1.as_slice(), &[0.25, -0.75]);
        fs::remove_file(path).ok();
    }
}
