//! Plain-text weight serialisation.
//!
//! A deliberately simple, dependency-free format (one parameter per line):
//!
//! ```text
//! bikecap-params v2
//! meta config_hash=00000000deadbeef grid=16x12 history=8 horizon=4
//! <name> <d0>x<d1>x... <v0> <v1> ...
//! ```
//!
//! Floats are written with full round-trip precision via `{:?}` formatting.
//! Version 2 adds the optional `meta` line: a hash of the producing model's
//! configuration plus the grid/window shape, so a serving process can reject
//! a checkpoint that disagrees with the architecture it expects *before*
//! hitting a low-level tensor-shape mismatch. Version 1 files (no meta line)
//! still load.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use bikecap_autograd::ParamStore;
use bikecap_tensor::Tensor;

/// Magic header of the legacy (un-annotated) weight format.
const HEADER_V1: &str = "bikecap-params v1";

/// Magic header of the current weight format (adds the `meta` line).
const HEADER_V2: &str = "bikecap-params v2";

/// Versioned description of the model a checkpoint was saved from.
///
/// The `config_hash` is an opaque fingerprint computed by the model crate
/// over every architecture hyper-parameter; the remaining fields duplicate
/// the handful of values a server needs to rebuild a compatible model (and
/// to print actionable mismatch errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Fingerprint of the full model configuration.
    pub config_hash: u64,
    /// Grid extent `(rows, cols)`.
    pub grid: (usize, usize),
    /// Historical slots `h` consumed per window.
    pub history: usize,
    /// Future slots `p` predicted per window.
    pub horizon: usize,
}

impl fmt::Display for CheckpointMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config_hash={:016x} grid={}x{} history={} horizon={}",
            self.config_hash, self.grid.0, self.grid.1, self.history, self.horizon
        )
    }
}

impl CheckpointMeta {
    fn parse(line: &str, line_no: usize) -> Result<Self, LoadParamsError> {
        let mut hash = None;
        let mut grid = None;
        let mut history = None;
        let mut horizon = None;
        let bad = |message: String| LoadParamsError::Parse { line: line_no, message };
        for field in line.split_whitespace().skip(1) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| bad(format!("meta field '{field}' is not key=value")))?;
            match key {
                "config_hash" => {
                    hash = Some(u64::from_str_radix(value, 16).map_err(|_| {
                        bad(format!("invalid config_hash '{value}'"))
                    })?)
                }
                "grid" => {
                    let (h, w) = value
                        .split_once('x')
                        .ok_or_else(|| bad(format!("invalid grid '{value}'")))?;
                    grid = Some((
                        h.parse().map_err(|_| bad(format!("invalid grid rows '{h}'")))?,
                        w.parse().map_err(|_| bad(format!("invalid grid cols '{w}'")))?,
                    ));
                }
                "history" => {
                    history =
                        Some(value.parse().map_err(|_| bad(format!("invalid history '{value}'")))?)
                }
                "horizon" => {
                    horizon =
                        Some(value.parse().map_err(|_| bad(format!("invalid horizon '{value}'")))?)
                }
                // Unknown keys are ignored so future versions can extend the
                // meta line without breaking old readers.
                _ => {}
            }
        }
        let meta = CheckpointMeta {
            config_hash: hash.ok_or_else(|| bad("meta line missing config_hash".into()))?,
            grid: grid.ok_or_else(|| bad("meta line missing grid".into()))?,
            history: history.ok_or_else(|| bad("meta line missing history".into()))?,
            horizon: horizon.ok_or_else(|| bad("meta line missing horizon".into()))?,
        };
        meta.validate(line_no)?;
        Ok(meta)
    }

    /// Rejects headers declaring degenerate window extents: a grid below
    /// 2×2 or a zero history/horizon can never describe a constructible
    /// model, so the loader fails here — before any parameter data is read —
    /// instead of deep inside a tensor-shape mismatch.
    fn validate(&self, line_no: usize) -> Result<(), LoadParamsError> {
        let bad = |message: String| LoadParamsError::Parse { line: line_no, message };
        if self.grid.0 < 2 || self.grid.1 < 2 {
            return Err(bad(format!(
                "meta declares grid {}x{}, but a model grid must be at least 2x2",
                self.grid.0, self.grid.1
            )));
        }
        if self.history == 0 {
            return Err(bad("meta declares history=0, but history must be >= 1".into()));
        }
        if self.horizon == 0 {
            return Err(bad("meta declares horizon=0, but horizon must be >= 1".into()));
        }
        Ok(())
    }
}

/// Errors produced when loading weights.
#[derive(Debug)]
pub enum LoadParamsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not in the expected format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file's parameters do not match the store (missing name or wrong
    /// shape).
    Mismatch(String),
    /// The checkpoint's metadata disagrees with the configuration the caller
    /// expects (different architecture fingerprint or grid/window shape).
    ConfigMismatch {
        /// What the caller (e.g. a serving registry) expected.
        expected: CheckpointMeta,
        /// What the checkpoint file declares.
        found: CheckpointMeta,
    },
}

impl fmt::Display for LoadParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadParamsError::Io(e) => write!(f, "i/o error reading parameters: {e}"),
            LoadParamsError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            LoadParamsError::Mismatch(msg) => write!(f, "parameter mismatch: {msg}"),
            LoadParamsError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint config mismatch: expected [{expected}], checkpoint declares [{found}]"
            ),
        }
    }
}

impl std::error::Error for LoadParamsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadParamsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadParamsError {
    fn from(e: io::Error) -> Self {
        LoadParamsError::Io(e)
    }
}

/// Writes every parameter of `store` to `path` (v1, no metadata).
///
/// Prefer [`save_params_with_meta`] for checkpoints that will be consumed by
/// a serving process; this bare variant remains for raw parameter dumps.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    write_params(store, None, path)
}

/// Writes every parameter of `store` to `path` as a v2 checkpoint carrying
/// `meta` so loaders can verify architecture compatibility up front.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params_with_meta(
    store: &ParamStore,
    meta: &CheckpointMeta,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    write_params(store, Some(meta), path)
}

fn write_params(
    store: &ParamStore,
    meta: Option<&CheckpointMeta>,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let mut out = io::BufWriter::new(fs::File::create(path)?);
    match meta {
        Some(meta) => {
            writeln!(out, "{HEADER_V2}")?;
            writeln!(out, "meta {meta}")?;
        }
        None => writeln!(out, "{HEADER_V1}")?,
    }
    for (_, name, value) in store.iter() {
        let dims: Vec<String> = value.shape().iter().map(|d| d.to_string()).collect();
        write!(out, "{name} {}", if dims.is_empty() { "scalar".to_string() } else { dims.join("x") })?;
        for v in value.as_slice() {
            write!(out, " {v:?}")?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Reads the [`CheckpointMeta`] of the checkpoint at `path` without touching
/// any parameter data. Returns `None` for v1 files, which carry no metadata.
///
/// # Errors
///
/// Returns [`LoadParamsError`] on I/O failure or a malformed header.
pub fn read_meta(path: impl AsRef<Path>) -> Result<Option<CheckpointMeta>, LoadParamsError> {
    let content = fs::read_to_string(path)?;
    parse_meta(&content).map(|(meta, _)| meta)
}

/// Parses the header (+ optional meta line), returning the meta and how many
/// leading lines belong to the preamble.
fn parse_meta(content: &str) -> Result<(Option<CheckpointMeta>, usize), LoadParamsError> {
    let mut lines = content.lines();
    match lines.next() {
        Some(l) if l.trim() == HEADER_V1 => Ok((None, 1)),
        Some(l) if l.trim() == HEADER_V2 => match lines.next() {
            Some(meta_line) if meta_line.trim_start().starts_with("meta ") => {
                Ok((Some(CheckpointMeta::parse(meta_line.trim(), 2)?), 2))
            }
            _ => Err(LoadParamsError::Parse {
                line: 2,
                message: "v2 checkpoint missing 'meta' line".to_string(),
            }),
        },
        Some(l) => Err(LoadParamsError::Parse {
            line: 1,
            message: format!("expected header '{HEADER_V1}' or '{HEADER_V2}', found '{l}'"),
        }),
        None => Err(LoadParamsError::Parse {
            line: 1,
            message: "empty file".to_string(),
        }),
    }
}

/// Loads parameters from `path` into `store`, matching by name. Accepts both
/// v1 and v2 checkpoints; any v2 metadata is ignored (use
/// [`load_params_checked`] to enforce it).
///
/// Every parameter in the file must exist in the store with the same shape;
/// store parameters absent from the file are left untouched.
///
/// # Errors
///
/// Returns [`LoadParamsError`] on I/O failure, malformed input, unknown names
/// or shape mismatches.
pub fn load_params(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), LoadParamsError> {
    load_params_impl(store, path, None)
}

/// Like [`load_params`], but first verifies the checkpoint's metadata against
/// `expected`, failing with [`LoadParamsError::ConfigMismatch`] *before* any
/// parameter is modified if the architectures disagree. v1 checkpoints carry
/// no metadata and are loaded unchecked (per-parameter shape checks still
/// apply).
///
/// # Errors
///
/// Returns [`LoadParamsError`] on I/O failure, malformed input, metadata
/// disagreement, unknown names or shape mismatches.
pub fn load_params_checked(
    store: &mut ParamStore,
    path: impl AsRef<Path>,
    expected: &CheckpointMeta,
) -> Result<(), LoadParamsError> {
    load_params_impl(store, path, Some(expected))
}

fn load_params_impl(
    store: &mut ParamStore,
    path: impl AsRef<Path>,
    expected: Option<&CheckpointMeta>,
) -> Result<(), LoadParamsError> {
    let content = fs::read_to_string(path)?;
    let (meta, preamble) = parse_meta(&content)?;
    if let (Some(expected), Some(found)) = (expected, meta) {
        if *expected != found {
            return Err(LoadParamsError::ConfigMismatch {
                expected: *expected,
                found,
            });
        }
    }
    for (idx, line) in content.lines().enumerate().skip(preamble) {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().ok_or_else(|| LoadParamsError::Parse {
            line: line_no,
            message: "missing parameter name".to_string(),
        })?;
        let shape_txt = parts.next().ok_or_else(|| LoadParamsError::Parse {
            line: line_no,
            message: "missing shape".to_string(),
        })?;
        let shape: Vec<usize> = if shape_txt == "scalar" {
            vec![]
        } else {
            shape_txt
                .split('x')
                .map(|d| {
                    d.parse::<usize>().map_err(|_| LoadParamsError::Parse {
                        line: line_no,
                        message: format!("invalid dimension '{d}'"),
                    })
                })
                .collect::<Result<_, _>>()?
        };
        let values: Vec<f32> = parts
            .map(|v| {
                v.parse::<f32>().map_err(|_| LoadParamsError::Parse {
                    line: line_no,
                    message: format!("invalid value '{v}'"),
                })
            })
            .collect::<Result<_, _>>()?;
        let expected: usize = shape.iter().product();
        if values.len() != expected {
            return Err(LoadParamsError::Parse {
                line: line_no,
                message: format!(
                    "shape {shape_txt} implies {expected} values, found {}",
                    values.len()
                ),
            });
        }
        let id = store
            .iter()
            .find(|(_, n, _)| *n == name)
            .map(|(id, _, _)| id)
            .ok_or_else(|| {
                LoadParamsError::Mismatch(format!("store has no parameter named '{name}'"))
            })?;
        if store.value(id).shape() != shape.as_slice() {
            return Err(LoadParamsError::Mismatch(format!(
                "parameter '{name}': file shape {:?} vs store shape {:?}",
                shape,
                store.value(id).shape()
            )));
        }
        store.set_value(id, Tensor::from_vec(values, &shape));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bikecap-serialize-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip_exact() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let a = store.add("layer.weight", Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng));
        let b = store.add("layer.bias", Tensor::randn(&[4], 0.0, 1.0, &mut rng));
        let path = tmp("roundtrip");
        save_params(&store, &path).unwrap();

        let mut restored = ParamStore::new();
        let a2 = restored.add("layer.weight", Tensor::zeros(&[3, 4]));
        let b2 = restored.add("layer.bias", Tensor::zeros(&[4]));
        load_params(&mut restored, &path).unwrap();
        assert_eq!(restored.value(a2), store.value(a));
        assert_eq!(restored.value(b2), store.value(b));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_wrong_header() {
        let path = tmp("badheader");
        fs::write(&path, "something else\n").unwrap();
        let mut store = ParamStore::new();
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { line: 1, .. }));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_unknown_parameter() {
        let path = tmp("unknown");
        fs::write(&path, format!("{HEADER_V1}\nmystery 2 1.0 2.0\n")).unwrap();
        let mut store = ParamStore::new();
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Mismatch(_)));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let path = tmp("shape");
        fs::write(&path, format!("{HEADER_V1}\np 3 1.0 2.0 3.0\n")).unwrap();
        let mut store = ParamStore::new();
        store.add("p", Tensor::zeros(&[2]));
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Mismatch(_)));
        fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_value_count_mismatch() {
        let path = tmp("count");
        fs::write(&path, format!("{HEADER_V1}\np 3 1.0 2.0\n")).unwrap();
        let mut store = ParamStore::new();
        store.add("p", Tensor::zeros(&[3]));
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { .. }));
        fs::remove_file(path).ok();
    }

    #[test]
    fn scalar_parameters_roundtrip() {
        let mut store = ParamStore::new();
        let s = store.add("temperature", Tensor::scalar(2.5));
        let path = tmp("scalar");
        save_params(&store, &path).unwrap();
        let mut restored = ParamStore::new();
        let s2 = restored.add("temperature", Tensor::scalar(0.0));
        load_params(&mut restored, &path).unwrap();
        assert_eq!(restored.value(s2).item(), store.value(s).item());
        fs::remove_file(path).ok();
    }

    fn sample_meta() -> CheckpointMeta {
        CheckpointMeta {
            config_hash: 0xdead_beef_cafe_f00d,
            grid: (16, 12),
            history: 8,
            horizon: 4,
        }
    }

    #[test]
    fn v2_meta_roundtrips() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![1.5, -2.5], &[2]));
        let path = tmp("v2meta");
        let meta = sample_meta();
        save_params_with_meta(&store, &meta, &path).unwrap();
        assert_eq!(read_meta(&path).unwrap(), Some(meta));

        let mut restored = ParamStore::new();
        let id = restored.add("w", Tensor::zeros(&[2]));
        load_params_checked(&mut restored, &path, &meta).unwrap();
        assert_eq!(restored.value(id).as_slice(), &[1.5, -2.5]);
        fs::remove_file(path).ok();
    }

    #[test]
    fn v1_files_have_no_meta_and_load_unchecked() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![3.0], &[1]));
        let path = tmp("v1nometa");
        save_params(&store, &path).unwrap();
        assert_eq!(read_meta(&path).unwrap(), None);
        // Checked load of a v1 file skips the meta check entirely.
        let mut restored = ParamStore::new();
        restored.add("w", Tensor::zeros(&[1]));
        load_params_checked(&mut restored, &path, &sample_meta()).unwrap();
        fs::remove_file(path).ok();
    }

    #[test]
    fn checked_load_rejects_config_mismatch_before_mutating() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![7.0], &[1]));
        let path = tmp("cfgmismatch");
        save_params_with_meta(&store, &sample_meta(), &path).unwrap();

        let mut restored = ParamStore::new();
        let id = restored.add("w", Tensor::zeros(&[1]));
        let expected = CheckpointMeta {
            horizon: 8,
            ..sample_meta()
        };
        let err = load_params_checked(&mut restored, &path, &expected).unwrap_err();
        assert!(
            matches!(err, LoadParamsError::ConfigMismatch { .. }),
            "expected ConfigMismatch, got {err}"
        );
        let text = err.to_string();
        assert!(text.contains("horizon=8") && text.contains("horizon=4"), "{text}");
        // The store must be untouched: the meta gate fires before any write.
        assert_eq!(restored.value(id).as_slice(), &[0.0]);
        fs::remove_file(path).ok();
    }

    #[test]
    fn v2_without_meta_line_is_rejected() {
        let path = tmp("v2nometa");
        fs::write(&path, format!("{HEADER_V2}\np scalar 1.0\n")).unwrap();
        let mut store = ParamStore::new();
        store.add("p", Tensor::scalar(0.0));
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { line: 2, .. }));
        fs::remove_file(path).ok();
    }

    #[test]
    fn meta_line_ignores_unknown_keys() {
        let line = "meta config_hash=00000000000000ff grid=4x5 history=8 horizon=2 sharding=none";
        let meta = CheckpointMeta::parse(line, 2).unwrap();
        assert_eq!(meta.config_hash, 0xff);
        assert_eq!(meta.grid, (4, 5));
    }

    #[test]
    fn meta_with_degenerate_extents_is_rejected() {
        for bad in [
            "meta config_hash=ff grid=0x8 history=8 horizon=4",
            "meta config_hash=ff grid=8x1 history=8 horizon=4",
            "meta config_hash=ff grid=8x8 history=0 horizon=4",
            "meta config_hash=ff grid=8x8 history=8 horizon=0",
        ] {
            let err = CheckpointMeta::parse(bad, 2).unwrap_err();
            assert!(
                matches!(err, LoadParamsError::Parse { line: 2, .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn load_rejects_degenerate_meta_before_mutating() {
        let path = tmp("degenerate-meta");
        fs::write(
            &path,
            format!("{HEADER_V2}\nmeta config_hash=ff grid=8x8 history=8 horizon=0\np scalar 1.0\n"),
        )
        .unwrap();
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::scalar(0.0));
        let err = load_params(&mut store, &path).unwrap_err();
        assert!(matches!(err, LoadParamsError::Parse { line: 2, .. }), "{err}");
        assert_eq!(store.value(id).item(), 0.0);
        fs::remove_file(path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = LoadParamsError::Parse {
            line: 7,
            message: "boom".into(),
        };
        let text = err.to_string();
        assert!(text.contains("line 7") && text.contains("boom"));
    }
}
