//! Convolutional layers, including the paper's pyramid convolution.

use bikecap_autograd::{ParamId, ParamStore, Tape, Var};
use bikecap_tensor::conv::Conv3dSpec;
use bikecap_tensor::Tensor;
use rand::Rng;

use crate::init::glorot_uniform;

/// 2-D convolution layer over `(N, C, H, W)` tensors with bias.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: ParamId,
    bias: ParamId,
    stride: (usize, usize),
    padding: (usize, usize),
}

impl Conv2d {
    /// Registers a 2-D convolution with kernel `(kh, kw)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        rng: &mut R,
    ) -> Self {
        let k = kernel.0 * kernel.1;
        let weight = store.add(
            format!("{name}.weight"),
            glorot_uniform(
                &[out_channels, in_channels, kernel.0, kernel.1],
                in_channels * k,
                out_channels * k,
                rng,
            ),
        );
        let bias = store.add(
            format!("{name}.bias"),
            Tensor::zeros(&[1, out_channels, 1, 1]),
        );
        Conv2d {
            weight,
            bias,
            stride,
            padding,
        }
    }

    /// Applies the convolution to a `(N, C_in, H, W)` var.
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatch.
    pub fn forward(&self, tape: &mut Tape, x: Var, store: &ParamStore) -> Var {
        let _span = bikecap_obs::span("nn.conv2d");
        let w = tape.param(store, self.weight);
        let b = tape.param(store, self.bias);
        let y = tape.conv2d(x, w, self.stride, self.padding);
        tape.add(y, b)
    }
}

/// 3-D convolution layer over `(N, C, D, H, W)` tensors with bias.
#[derive(Debug, Clone)]
pub struct Conv3d {
    weight: ParamId,
    bias: ParamId,
    spec: Conv3dSpec,
}

impl Conv3d {
    /// Registers a 3-D convolution with kernel `(kd, kh, kw)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize, usize),
        spec: Conv3dSpec,
        rng: &mut R,
    ) -> Self {
        let k = kernel.0 * kernel.1 * kernel.2;
        let weight = store.add(
            format!("{name}.weight"),
            glorot_uniform(
                &[out_channels, in_channels, kernel.0, kernel.1, kernel.2],
                in_channels * k,
                out_channels * k,
                rng,
            ),
        );
        let bias = store.add(
            format!("{name}.bias"),
            Tensor::zeros(&[1, out_channels, 1, 1, 1]),
        );
        Conv3d { weight, bias, spec }
    }

    /// Applies the convolution to a `(N, C_in, D, H, W)` var.
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatch.
    pub fn forward(&self, tape: &mut Tape, x: Var, store: &ParamStore) -> Var {
        let _span = bikecap_obs::span("nn.conv3d");
        let w = tape.param(store, self.weight);
        let b = tape.param(store, self.bias);
        if bikecap_obs::enabled() {
            let (batch, c_in, dims) = unpack5(tape.value(x).shape());
            let (c_out, _, kernel) = unpack5(tape.value(w).shape());
            let out = bikecap_tensor::conv::conv3d_out_dims(dims, kernel, self.spec);
            bikecap_obs::Work::conv3d(batch, c_in, c_out, out, kernel).record();
        }
        let y = tape.conv3d(x, w, self.spec);
        tape.add(y, b)
    }
}

/// Transposed 3-D convolution (deconvolution) layer with bias, used by the
/// paper's 3-D decoder (Sec. III-E).
#[derive(Debug, Clone)]
pub struct ConvTranspose3d {
    weight: ParamId,
    bias: ParamId,
    spec: Conv3dSpec,
}

impl ConvTranspose3d {
    /// Registers a transposed 3-D convolution with kernel `(kd, kh, kw)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize, usize),
        spec: Conv3dSpec,
        rng: &mut R,
    ) -> Self {
        let k = kernel.0 * kernel.1 * kernel.2;
        let weight = store.add(
            format!("{name}.weight"),
            glorot_uniform(
                &[in_channels, out_channels, kernel.0, kernel.1, kernel.2],
                in_channels * k,
                out_channels * k,
                rng,
            ),
        );
        let bias = store.add(
            format!("{name}.bias"),
            Tensor::zeros(&[1, out_channels, 1, 1, 1]),
        );
        ConvTranspose3d { weight, bias, spec }
    }

    /// Applies the transposed convolution to a `(N, C_in, D, H, W)` var.
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatch.
    pub fn forward(&self, tape: &mut Tape, x: Var, store: &ParamStore) -> Var {
        let _span = bikecap_obs::span("nn.deconv3d");
        let w = tape.param(store, self.weight);
        let b = tape.param(store, self.bias);
        if bikecap_obs::enabled() {
            let (batch, c_in, dims) = unpack5(tape.value(x).shape());
            // ConvTranspose3d weights are (C_in, C_out, KD, KH, KW).
            let (_, c_out, kernel) = unpack5(tape.value(w).shape());
            let out = bikecap_tensor::conv::conv_transpose3d_out_dims(dims, kernel, self.spec);
            bikecap_obs::Work::conv_transpose3d(batch, c_in, c_out, dims, out, kernel).record();
        }
        let y = tape.conv_transpose3d(x, w, self.spec);
        tape.add(y, b)
    }
}

/// The paper's pyramid convolutional layer (Sec. II-A / III-C).
///
/// A 3-D convolution over `(N, C, h, H, W)` whose kernel depth equals the
/// pyramid size `k` and whose **spatial support widens with temporal lag**:
/// the most recent kernel slice is `1x1`, the previous `3x3`, …, the oldest
/// `(2k-1)x(2k-1)`. (The paper's text writes `(2k+1)` for the oldest slice,
/// inconsistent with its own `1, 3, …` progression; we use the consistent
/// `2·lag+1` reading — see DESIGN.md.)
///
/// Realised as a dense `(C_out, C_in, k, 2k-1, 2k-1)` weight multiplied by a
/// constant binary mask, so masked coefficients stay exactly zero and receive
/// zero gradient.
///
/// Time padding is **causal**: `k-1` zero slots are prepended so output slot
/// `t` only sees input slots `t-k+1..=t`, matching the flow-propagation
/// intuition of Fig. 3.
#[derive(Debug, Clone)]
pub struct PyramidConv3d {
    weight: ParamId,
    bias: ParamId,
    mask: Tensor,
    pyramid_size: usize,
}

impl PyramidConv3d {
    /// Registers a pyramid convolution with pyramid size `k >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `pyramid_size` is 0.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        pyramid_size: usize,
        rng: &mut R,
    ) -> Self {
        assert!(pyramid_size >= 1, "pyramid size must be at least 1");
        let k = pyramid_size;
        let s = 2 * k - 1;
        let mask = Self::pyramid_mask(out_channels, in_channels, k);
        // Fan-in counts only unmasked coefficients.
        let active: usize = (0..k).map(|lag| (2 * lag + 1) * (2 * lag + 1)).sum();
        let weight = store.add(
            format!("{name}.weight"),
            glorot_uniform(
                &[out_channels, in_channels, k, s, s],
                in_channels * active,
                out_channels * active,
                rng,
            ),
        );
        let bias = store.add(
            format!("{name}.bias"),
            Tensor::zeros(&[1, out_channels, 1, 1, 1]),
        );
        PyramidConv3d {
            weight,
            bias,
            mask,
            pyramid_size,
        }
    }

    /// The binary pyramid mask: kernel depth index `kd` (0 = oldest) keeps a
    /// centred `(2·lag+1)` square where `lag = k-1-kd`.
    pub fn pyramid_mask(out_channels: usize, in_channels: usize, k: usize) -> Tensor {
        let s = 2 * k - 1;
        let center = (k - 1) as isize;
        Tensor::from_fn(&[out_channels, in_channels, k, s, s], |ix| {
            let lag = (k - 1 - ix[2]) as isize;
            let dh = ix[3] as isize - center;
            let dw = ix[4] as isize - center;
            if dh.abs() <= lag && dw.abs() <= lag {
                1.0
            } else {
                0.0
            }
        })
    }

    /// The configured pyramid size `k`.
    pub fn pyramid_size(&self) -> usize {
        self.pyramid_size
    }

    /// Number of *active* (unmasked) coefficients per output/input channel
    /// pair — the effective kernel volume.
    pub fn active_coefficients(&self) -> usize {
        (0..self.pyramid_size)
            .map(|lag| (2 * lag + 1) * (2 * lag + 1))
            .sum()
    }

    /// Applies the pyramid convolution to a `(N, C_in, h, H, W)` var,
    /// preserving all extents (`h`, `H`, `W` unchanged).
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatch.
    pub fn forward(&self, tape: &mut Tape, x: Var, store: &ParamStore) -> Var {
        let _span = bikecap_obs::span("nn.pyramid");
        let k = self.pyramid_size;
        let xs = tape.value(x).shape().to_vec();
        assert_eq!(xs.len(), 5, "PyramidConv3d expects rank-5 input, got {xs:?}");
        // Causal time padding: prepend k-1 zero slots.
        let padded = if k > 1 {
            let zeros = tape.constant(Tensor::zeros(&[xs[0], xs[1], k - 1, xs[3], xs[4]]));
            tape.concat(&[zeros, x], 2)
        } else {
            x
        };
        let w = tape.param(store, self.weight);
        let m = tape.constant(self.mask.clone());
        let wm = tape.mul(w, m);
        let spec = Conv3dSpec {
            stride: (1, 1, 1),
            padding: (0, k - 1, k - 1),
        };
        if bikecap_obs::enabled() {
            // The dense masked kernel really computes all (k, 2k-1, 2k-1)
            // taps — the work model describes the implementation, not the
            // pyramid's active support.
            let (batch, c_in, dims) = unpack5(tape.value(padded).shape());
            let (c_out, _, kernel) = unpack5(tape.value(wm).shape());
            let out = bikecap_tensor::conv::conv3d_out_dims(dims, kernel, spec);
            bikecap_obs::Work::conv3d(batch, c_in, c_out, out, kernel).record();
        }
        let y = tape.conv3d(padded, wm, spec);
        let b = tape.param(store, self.bias);
        tape.add(y, b)
    }
}

/// Splits a rank-5 shape into `(dim0, dim1, (dim2, dim3, dim4))` — batch,
/// channels, and the trailing volume for inputs; out-channels, in-channels,
/// and the kernel extents for weights.
fn unpack5(shape: &[usize]) -> (usize, usize, (usize, usize, usize)) {
    (shape[0], shape[1], (shape[2], shape[3], shape[4]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn conv2d_shapes_and_grads() {
        let mut store = ParamStore::new();
        let layer = Conv2d::new(&mut store, "c", 2, 3, (3, 3), (1, 1), (1, 1), &mut rng());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 2, 5, 5]));
        let y = layer.forward(&mut tape, x, &store);
        assert_eq!(tape.value(y).shape(), &[2, 3, 5, 5]);
        let loss = tape.sum(y);
        tape.backward(loss, &mut store);
        for (id, _, _) in store.iter().collect::<Vec<_>>() {
            assert!(store.grad(id).abs().sum() > 0.0);
        }
    }

    #[test]
    fn conv3d_strided_output_shape() {
        let mut store = ParamStore::new();
        let spec = Conv3dSpec {
            stride: (2, 1, 1),
            padding: (0, 1, 1),
        };
        let layer = Conv3d::new(&mut store, "c", 1, 4, (2, 3, 3), spec, &mut rng());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 1, 8, 4, 4]));
        let y = layer.forward(&mut tape, x, &store);
        assert_eq!(tape.value(y).shape(), &[1, 4, 4, 4, 4]);
    }

    #[test]
    fn conv_transpose3d_preserves_extent_with_same_padding() {
        let mut store = ParamStore::new();
        let layer = ConvTranspose3d::new(
            &mut store,
            "d",
            3,
            1,
            (3, 3, 3),
            Conv3dSpec::padded(1, 1, 1),
            &mut rng(),
        );
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3, 4, 6, 6]));
        let y = layer.forward(&mut tape, x, &store);
        assert_eq!(tape.value(y).shape(), &[2, 1, 4, 6, 6]);
    }

    #[test]
    fn pyramid_mask_extents() {
        // k = 3: slices (oldest -> newest) keep 5x5, 3x3, 1x1.
        let m = PyramidConv3d::pyramid_mask(1, 1, 3);
        assert_eq!(m.shape(), &[1, 1, 3, 5, 5]);
        let per_slice: Vec<f32> = (0..3)
            .map(|kd| {
                let mut s = 0.0;
                for h in 0..5 {
                    for w in 0..5 {
                        s += m.get(&[0, 0, kd, h, w]);
                    }
                }
                s
            })
            .collect();
        assert_eq!(per_slice, vec![25.0, 9.0, 1.0]);
        // The newest slice keeps exactly the centre.
        assert_eq!(m.get(&[0, 0, 2, 2, 2]), 1.0);
        assert_eq!(m.get(&[0, 0, 2, 2, 3]), 0.0);
    }

    #[test]
    fn pyramid_active_coefficients() {
        let mut store = ParamStore::new();
        let layer = PyramidConv3d::new(&mut store, "p", 1, 1, 3, &mut rng());
        assert_eq!(layer.active_coefficients(), 1 + 9 + 25);
        assert_eq!(layer.pyramid_size(), 3);
    }

    #[test]
    fn pyramid_preserves_input_extents() {
        let mut store = ParamStore::new();
        let layer = PyramidConv3d::new(&mut store, "p", 3, 4, 3, &mut rng());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3, 8, 6, 6]));
        let y = layer.forward(&mut tape, x, &store);
        assert_eq!(tape.value(y).shape(), &[2, 4, 8, 6, 6]);
    }

    #[test]
    fn pyramid_is_causal_in_time() {
        // Perturbing a *future* input slot must not change earlier outputs.
        let mut store = ParamStore::new();
        let layer = PyramidConv3d::new(&mut store, "p", 1, 2, 2, &mut rng());

        let base = Tensor::zeros(&[1, 1, 4, 3, 3]);
        let mut bumped = base.clone();
        bumped.set(&[0, 0, 3, 1, 1], 10.0); // change only the last slot

        let run = |input: Tensor, store: &ParamStore| {
            let mut tape = Tape::new();
            let x = tape.constant(input);
            let y = layer.forward(&mut tape, x, store);
            tape.value(y).clone()
        };
        let y0 = run(base, &store);
        let y1 = run(bumped, &store);
        // Outputs for slots 0..3 must be identical; slot 3 may differ.
        for d in 0..3 {
            for c in 0..2 {
                for h in 0..3 {
                    for w in 0..3 {
                        assert_eq!(
                            y0.get(&[0, c, d, h, w]),
                            y1.get(&[0, c, d, h, w]),
                            "future leak at slot {d}"
                        );
                    }
                }
            }
        }
        assert!(y0.sub(&y1).abs().sum() > 0.0, "last slot must react");
    }

    #[test]
    fn pyramid_spatial_reach_grows_with_lag() {
        // A perturbation far from the centre must influence the output only
        // through sufficiently old time slots. With k=2 the newest slice is
        // 1x1: a spatial neighbour at the same slot cannot affect the output
        // at the centre cell in the same slot.
        let mut store = ParamStore::new();
        let layer = PyramidConv3d::new(&mut store, "p", 1, 1, 2, &mut rng());
        let run = |input: Tensor| {
            let mut tape = Tape::new();
            let x = tape.constant(input);
            let y = layer.forward(&mut tape, x, &store);
            tape.value(y).clone()
        };
        let base = run(Tensor::zeros(&[1, 1, 2, 3, 3]));
        // Bump the neighbour (0,1) at the *latest* slot: centre output at the
        // latest slot must not move (1x1 kernel there), but at lag 1 it would.
        let mut b1 = Tensor::zeros(&[1, 1, 2, 3, 3]);
        b1.set(&[0, 0, 1, 0, 1], 5.0);
        let y1 = run(b1);
        assert_eq!(y1.get(&[0, 0, 1, 1, 1]), base.get(&[0, 0, 1, 1, 1]));

        let mut b2 = Tensor::zeros(&[1, 1, 2, 3, 3]);
        b2.set(&[0, 0, 0, 0, 1], 5.0); // same neighbour, one slot earlier
        let y2 = run(b2);
        assert!(
            (y2.get(&[0, 0, 1, 1, 1]) - base.get(&[0, 0, 1, 1, 1])).abs() > 0.0,
            "lag-1 neighbour should reach the centre"
        );
    }

    #[test]
    fn pyramid_masked_weights_get_zero_gradient() {
        let mut store = ParamStore::new();
        let layer = PyramidConv3d::new(&mut store, "p", 1, 1, 2, &mut rng());
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 1, 3, 4, 4]));
        let y = layer.forward(&mut tape, x, &store);
        let loss = tape.sum(y);
        tape.backward(loss, &mut store);
        let wid = store.iter().find(|(_, n, _)| *n == "p.weight").unwrap().0;
        let grad = store.grad(wid).clone();
        let mask = PyramidConv3d::pyramid_mask(1, 1, 2);
        // Gradient must vanish exactly where the mask is zero.
        for (g, m) in grad.as_slice().iter().zip(mask.as_slice()) {
            if *m == 0.0 {
                assert_eq!(*g, 0.0);
            }
        }
        assert!(grad.abs().sum() > 0.0);
    }
}
