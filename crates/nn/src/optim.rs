//! Optimizers: SGD (with momentum) and Adam, plus gradient clipping.

use bikecap_autograd::ParamStore;
use bikecap_tensor::Tensor;

/// Clips the global gradient norm to `max_norm`, returning the pre-clip norm.
///
/// Matches the usual "clip-by-global-norm" semantics: if the joint L2 norm of
/// all gradients exceeds `max_norm`, every gradient is scaled by
/// `max_norm / norm`.
pub fn clip_grad_norm(store: &mut ParamStore, max_norm: f32) -> f32 {
    let norm = store.grad_norm();
    if norm > max_norm && norm > 0.0 {
        store.scale_grads(max_norm / norm);
    }
    norm
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with heavy-ball momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (e.g. for manual decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update from the accumulated gradients, then the caller
    /// should [`ParamStore::zero_grads`].
    pub fn step(&mut self, store: &mut ParamStore) {
        let lr = self.lr;
        let mu = self.momentum;
        let velocity = &mut self.velocity;
        store.update(|slot, value, grad| {
            if mu == 0.0 {
                value.add_assign_(&grad.scale(-lr));
                return;
            }
            while velocity.len() <= slot {
                velocity.push(Tensor::zeros(&[0]));
            }
            if velocity[slot].shape() != value.shape() {
                velocity[slot] = Tensor::zeros(value.shape());
            }
            let v = &mut velocity[slot];
            v.scale_(mu);
            v.add_assign_(grad);
            value.add_assign_(&v.scale(-lr));
        });
    }
}

/// The Adam optimizer (Kingma & Ba) — the paper's optimizer (Sec. IV-C,
/// lr = 0.001) with the standard bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the paper's defaults: `beta1 = 0.9`, `beta2 = 0.999`,
    /// `eps = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u32 {
        self.t
    }

    /// Exports the full optimizer state — the step counter plus per-slot
    /// first/second moment estimates, named by the parameter they track —
    /// for checkpointing. Restored with [`Adam::import_state`].
    pub fn export_state(&self, store: &ParamStore) -> Vec<(String, Tensor)> {
        // `store.iter()` yields parameters in slot order, which is exactly
        // how the m/v banks are indexed.
        let moment = |bank: &[Tensor], slot: usize, value: &Tensor| match bank.get(slot) {
            // Zeros for never-touched slots (the banks grow lazily).
            Some(t) if t.shape() == value.shape() => t.clone(),
            _ => Tensor::zeros(value.shape()),
        };
        let mut out = vec![("adam.t".to_string(), Tensor::scalar(self.t as f32))];
        for (slot, (_, name, value)) in store.iter().enumerate() {
            out.push((format!("adam.m.{name}"), moment(&self.m, slot, value)));
            out.push((format!("adam.v.{name}"), moment(&self.v, slot, value)));
        }
        out
    }

    /// Restores state exported by [`Adam::export_state`]. Entries are matched
    /// by parameter name against `store`'s slot order, so the store must hold
    /// the same parameters (in any slot order) as when the state was saved.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or shape-mismatched entry.
    pub fn import_state(
        &mut self,
        store: &ParamStore,
        state: &[(String, Tensor)],
    ) -> Result<(), String> {
        let lookup = |key: &str| state.iter().find(|(n, _)| n == key).map(|(_, t)| t);
        let t_scalar = lookup("adam.t").ok_or("optimizer state missing adam.t")?;
        let mut m = Vec::new();
        let mut v = Vec::new();
        for (_, name, value) in store.iter() {
            for (bank, kind) in [(&mut m, "m"), (&mut v, "v")] {
                let key = format!("adam.{kind}.{name}");
                let tensor = lookup(&key).ok_or_else(|| format!("optimizer state missing {key}"))?;
                if tensor.shape() != value.shape() {
                    return Err(format!(
                        "optimizer state {key}: shape {:?} vs parameter shape {:?}",
                        tensor.shape(),
                        value.shape()
                    ));
                }
                bank.push(tensor.clone());
            }
        }
        self.t = t_scalar.item() as u32;
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// Applies one Adam update from the accumulated gradients.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let m = &mut self.m;
        let v = &mut self.v;
        store.update(|slot, value, grad| {
            while m.len() <= slot {
                m.push(Tensor::zeros(&[0]));
                v.push(Tensor::zeros(&[0]));
            }
            if m[slot].shape() != value.shape() {
                m[slot] = Tensor::zeros(value.shape());
                v[slot] = Tensor::zeros(value.shape());
            }
            let ms = m[slot].as_mut_slice();
            let vs = v[slot].as_mut_slice();
            let gs = grad.as_slice();
            let xs = value.as_mut_slice();
            for i in 0..gs.len() {
                ms[i] = b1 * ms[i] + (1.0 - b1) * gs[i];
                vs[i] = b2 * vs[i] + (1.0 - b2) * gs[i] * gs[i];
                let mhat = ms[i] / bc1;
                let vhat = vs[i] / bc2;
                xs[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikecap_autograd::{ParamStore, Tape};

    /// Minimises f(x) = (x - 3)^2 with the given step closure.
    fn minimise(mut stepper: impl FnMut(&mut ParamStore), iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::from_vec(vec![-2.0], &[1]));
        for _ in 0..iters {
            store.zero_grads();
            let mut tape = Tape::new();
            let xv = tape.param(&store, x);
            let c = tape.constant(Tensor::from_vec(vec![3.0], &[1]));
            let d = tape.sub(xv, c);
            let sq = tape.square(d);
            let loss = tape.sum(sq);
            tape.backward(loss, &mut store);
            stepper(&mut store);
        }
        store.value(x).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = minimise(|s| opt.step(s), 100);
        assert!((x - 3.0).abs() < 1e-3, "SGD ended at {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let x = minimise(|s| opt.step(s), 200);
        assert!((x - 3.0).abs() < 1e-2, "momentum SGD ended at {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = minimise(|s| opt.step(s), 300);
        assert!((x - 3.0).abs() < 1e-2, "Adam ended at {x}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn adam_handles_sparse_like_gradients() {
        // A parameter whose gradient is frequently zero should still converge
        // thanks to moment estimates decaying.
        let mut store = ParamStore::new();
        let x = store.add("x", Tensor::from_vec(vec![0.0], &[1]));
        let mut opt = Adam::new(0.05);
        for step in 0..400 {
            store.zero_grads();
            if step % 3 == 0 {
                let mut tape = Tape::new();
                let xv = tape.param(&store, x);
                let c = tape.constant(Tensor::from_vec(vec![1.0], &[1]));
                let d = tape.sub(xv, c);
                let sq = tape.square(d);
                let loss = tape.sum(sq);
                tape.backward(loss, &mut store);
            }
            opt.step(&mut store);
        }
        assert!((store.value(x).item() - 1.0).abs() < 0.1);
    }

    #[test]
    fn clip_grad_norm_scales_down_only_when_needed() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::zeros(&[2]));
        store.accumulate_grad(a, &Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let pre = clip_grad_norm(&mut store, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
        // Below the threshold: untouched.
        let pre2 = clip_grad_norm(&mut store, 10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn adam_state_roundtrip_resumes_bitwise() {
        // Optimize, snapshot mid-way, keep optimizing; then restore the
        // snapshot into a fresh Adam and replay — trajectories must match
        // bit for bit, which is what `train --resume` relies on.
        let run = |resume_at: Option<usize>| -> Vec<f32> {
            let mut store = ParamStore::new();
            let x = store.add("x", Tensor::from_vec(vec![-2.0, 5.0], &[2]));
            let mut opt = Adam::new(0.1);
            let mut trace = Vec::new();
            for step in 0..40 {
                if resume_at == Some(step) {
                    let state = opt.export_state(&store);
                    let mut fresh = Adam::new(0.1);
                    fresh.import_state(&store, &state).unwrap();
                    opt = fresh;
                }
                store.zero_grads();
                let mut tape = Tape::new();
                let xv = tape.param(&store, x);
                let sq = tape.square(xv);
                let loss = tape.sum(sq);
                tape.backward(loss, &mut store);
                opt.step(&mut store);
                trace.extend_from_slice(store.value(x).as_slice());
            }
            trace
        };
        assert_eq!(run(None), run(Some(20)));
    }

    #[test]
    fn adam_import_rejects_missing_and_mismatched_entries() {
        let mut store = ParamStore::new();
        store.add("x", Tensor::zeros(&[2]));
        let mut opt = Adam::new(0.1);
        assert!(opt.import_state(&store, &[]).unwrap_err().contains("adam.t"));
        let partial = vec![("adam.t".to_string(), Tensor::scalar(3.0))];
        assert!(opt.import_state(&store, &partial).unwrap_err().contains("adam.m.x"));
        let wrong_shape = vec![
            ("adam.t".to_string(), Tensor::scalar(3.0)),
            ("adam.m.x".to_string(), Tensor::zeros(&[5])),
            ("adam.v.x".to_string(), Tensor::zeros(&[2])),
        ];
        assert!(opt.import_state(&store, &wrong_shape).unwrap_err().contains("shape"));
    }

    #[test]
    fn learning_rate_accessors() {
        let mut adam = Adam::new(0.01);
        adam.set_learning_rate(0.005);
        assert_eq!(adam.learning_rate(), 0.005);
        let mut sgd = Sgd::new(0.1);
        sgd.set_learning_rate(0.2);
        assert_eq!(sgd.learning_rate(), 0.2);
    }
}
