//! Weight initialisation schemes.

use bikecap_tensor::Tensor;
use rand::Rng;

/// Glorot/Xavier uniform initialisation: samples from
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
///
/// For convolution weights pass `fan_in = C_in * prod(kernel)` and
/// `fan_out = C_out * prod(kernel)`.
pub fn glorot_uniform<R: Rng + ?Sized>(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(shape, -limit, limit, rng)
}

/// He/Kaiming uniform initialisation: samples from
/// `U(-sqrt(6/fan_in), +sqrt(6/fan_in))`, suited to ReLU activations.
pub fn he_uniform<R: Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    let limit = (6.0 / fan_in.max(1) as f32).sqrt();
    Tensor::rand_uniform(shape, -limit, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_bounds_match_fans() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = glorot_uniform(&[1000], 50, 50, &mut rng);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(t.max_value() <= limit && t.min_value() >= -limit);
        // Should actually use most of the range.
        assert!(t.max_value() > 0.8 * limit);
    }

    #[test]
    fn he_bounds_match_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = he_uniform(&[1000], 24, &mut rng);
        let limit = (6.0f32 / 24.0).sqrt();
        assert!(t.max_value() <= limit && t.min_value() >= -limit);
    }

    #[test]
    fn init_mean_near_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = glorot_uniform(&[10_000], 10, 10, &mut rng);
        assert!(t.mean().abs() < 0.02);
    }
}
