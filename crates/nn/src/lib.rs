//! Neural-network layers, optimizers and training utilities for the BikeCAP
//! reproduction.
//!
//! Everything here composes the [`bikecap_autograd::Tape`]: a layer registers
//! its parameters in a [`bikecap_autograd::ParamStore`] at construction and
//! exposes a `forward(&self, tape, input) -> Var` method. One forward pass =
//! one tape.
//!
//! The layer zoo covers what the paper and its seven baselines need:
//!
//! * [`Dense`] — fully connected.
//! * [`Conv2d`], [`Conv3d`], [`ConvTranspose3d`] — convolutions with bias.
//! * [`PyramidConv3d`] — the paper's pyramid convolution (Sec. III-C): a 3-D
//!   kernel whose spatial support widens with temporal lag, realised as a
//!   weight mask.
//! * [`LstmCell`], [`ConvLstmCell`] — recurrent cells (LSTM / convLSTM
//!   baselines).
//! * [`StLstmCell`] — PredRNN's spatio-temporal LSTM cell.
//! * [`CausalLstmCell`], [`GradientHighwayUnit`] — PredRNN++'s cell pair.
//! * [`ChebConv`] — Chebyshev graph convolution (STGCN / STSGCN baselines),
//!   with graph utilities in [`graph`].
//! * [`Adam`], [`Sgd`] — optimizers, plus [`clip_grad_norm`].
//!
//! ```
//! use bikecap_autograd::{ParamStore, Tape};
//! use bikecap_nn::Dense;
//! use bikecap_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut store = ParamStore::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let layer = Dense::new(&mut store, "fc", 4, 2, &mut rng);
//!
//! let mut tape = Tape::new();
//! let x = tape.constant(Tensor::ones(&[3, 4]));
//! let y = layer.forward(&mut tape, x, &store);
//! assert_eq!(tape.value(y).shape(), &[3, 2]);
//! ```

mod conv_layers;
pub mod graph;
mod init;
mod linear;
mod optim;
mod rnn;
pub mod serialize;
mod spatiotemporal;

pub use conv_layers::{Conv2d, Conv3d, ConvTranspose3d, PyramidConv3d};
pub use graph::ChebConv;
pub use init::{glorot_uniform, he_uniform};
pub use linear::Dense;
pub use optim::{clip_grad_norm, Adam, Sgd};
pub use rnn::{ConvLstmCell, LstmCell};
pub use spatiotemporal::{CausalLstmCell, GradientHighwayUnit, StLstmCell};
