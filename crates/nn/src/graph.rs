//! Graph utilities and Chebyshev graph convolution for the STGCN / STSGCN
//! baselines.
//!
//! The paper converts the grid into a graph by connecting grids within
//! `h` hops (Sec. IV-B, STGCN baseline); [`grid_adjacency`] builds exactly
//! that adjacency over an `H x W` grid with 8-neighbourhoods.

use bikecap_autograd::{ParamId, ParamStore, Tape, Var};
use bikecap_tensor::Tensor;
use rand::Rng;

use crate::init::glorot_uniform;

/// Adjacency matrix of an `height x width` grid where cells within `hops`
/// Chebyshev (king-move) distance are connected. No self-loops.
///
/// # Panics
///
/// Panics if `hops` is 0.
pub fn grid_adjacency(height: usize, width: usize, hops: usize) -> Tensor {
    assert!(hops >= 1, "grid_adjacency: hops must be >= 1");
    let n = height * width;
    Tensor::from_fn(&[n, n], |ix| {
        let (a, b) = (ix[0], ix[1]);
        if a == b {
            return 0.0;
        }
        let (ar, ac) = (a / width, a % width);
        let (br, bc) = (b / width, b % width);
        let dr = ar.abs_diff(br);
        let dc = ac.abs_diff(bc);
        if dr.max(dc) <= hops {
            1.0
        } else {
            0.0
        }
    })
}

/// Symmetrically normalised Laplacian `L = I - D^{-1/2} A D^{-1/2}`.
///
/// Isolated nodes get a zero degree-inverse (their Laplacian row is just the
/// identity entry).
///
/// # Panics
///
/// Panics unless `adj` is square rank 2.
pub fn normalized_laplacian(adj: &Tensor) -> Tensor {
    assert_eq!(adj.ndim(), 2, "normalized_laplacian expects a rank-2 matrix");
    let n = adj.shape()[0];
    assert_eq!(n, adj.shape()[1], "normalized_laplacian expects a square matrix");
    let deg: Vec<f32> = (0..n)
        .map(|i| (0..n).map(|j| adj.get(&[i, j])).sum())
        .collect();
    let dinv: Vec<f32> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    Tensor::from_fn(&[n, n], |ix| {
        let (i, j) = (ix[0], ix[1]);
        let norm = dinv[i] * adj.get(&[i, j]) * dinv[j];
        if i == j {
            1.0 - norm
        } else {
            -norm
        }
    })
}

/// Rescales a normalised Laplacian to `[-1, 1]` for Chebyshev polynomials:
/// `L~ = 2 L / lambda_max - I`, with the standard `lambda_max = 2` bound for
/// normalised Laplacians.
pub fn scaled_laplacian(laplacian: &Tensor) -> Tensor {
    let n = laplacian.shape()[0];
    let eye = Tensor::from_fn(&[n, n], |ix| if ix[0] == ix[1] { 1.0 } else { 0.0 });
    laplacian.sub(&eye)
}

/// Left-multiplies batched node features `x: (B, n, c)` by an `(n, n)` graph
/// operator var (adjacency, Laplacian, …), returning `(B, n, c)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn left_multiply(tape: &mut Tape, op: Var, x: Var) -> Var {
    let shape = tape.value(x).shape().to_vec();
    assert_eq!(shape.len(), 3, "left_multiply expects (B, n, c), got {shape:?}");
    let (b, n, c) = (shape[0], shape[1], shape[2]);
    let xp = tape.permute(x, &[1, 0, 2]); // (n, B, c)
    let xr = tape.reshape(xp, &[n, b * c]);
    let lx = tape.matmul(op, xr);
    let lxr = tape.reshape(lx, &[n, b, c]);
    tape.permute(lxr, &[1, 0, 2])
}

/// Chebyshev graph convolution (Defferrard et al.), order `K`:
/// `y = sum_k T_k(L~) x W_k + b` over node features `x: (B, n, c_in)`.
#[derive(Debug, Clone)]
pub struct ChebConv {
    weight: ParamId, // (K * c_in, c_out)
    bias: ParamId,   // (1, c_out)
    order: usize,
    in_channels: usize,
    out_channels: usize,
}

impl ChebConv {
    /// Registers a ChebConv of polynomial order `K >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is 0.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        order: usize,
        rng: &mut R,
    ) -> Self {
        assert!(order >= 1, "ChebConv order must be >= 1");
        let weight = store.add(
            format!("{name}.weight"),
            glorot_uniform(
                &[order * in_channels, out_channels],
                order * in_channels,
                out_channels,
                rng,
            ),
        );
        let bias = store.add(format!("{name}.bias"), Tensor::zeros(&[1, out_channels]));
        ChebConv {
            weight,
            bias,
            order,
            in_channels,
            out_channels,
        }
    }

    /// Polynomial order `K`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Left-multiplies node features `(B, n, c)` by an `(n, n)` operator.
    fn apply_operator(tape: &mut Tape, op: Var, x: Var) -> Var {
        left_multiply(tape, op, x)
    }

    /// Applies the convolution given the scaled Laplacian as a constant.
    ///
    /// `x` is `(B, n, c_in)`, `scaled_lap` is the `(n, n)` output of
    /// [`scaled_laplacian`]; returns `(B, n, c_out)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward(
        &self,
        tape: &mut Tape,
        x: Var,
        scaled_lap: &Tensor,
        store: &ParamStore,
    ) -> Var {
        let shape = tape.value(x).shape().to_vec();
        assert_eq!(shape.len(), 3, "ChebConv expects (B, n, c_in), got {shape:?}");
        assert_eq!(
            shape[2], self.in_channels,
            "ChebConv: expected {} input channels, got {}",
            self.in_channels, shape[2]
        );
        let (b, n) = (shape[0], shape[1]);
        let lap = tape.constant(scaled_lap.clone());

        // Chebyshev recursion: T_0 = x, T_1 = L~ x, T_k = 2 L~ T_{k-1} - T_{k-2}.
        let mut terms: Vec<Var> = Vec::with_capacity(self.order);
        terms.push(x);
        if self.order >= 2 {
            terms.push(Self::apply_operator(tape, lap, x));
        }
        for k in 2..self.order {
            let lt = Self::apply_operator(tape, lap, terms[k - 1]);
            let two_lt = tape.scale(lt, 2.0);
            let t = tape.sub(two_lt, terms[k - 2]);
            terms.push(t);
        }

        let stacked = tape.concat(&terms, 2); // (B, n, K*c_in)
        let flat = tape.reshape(stacked, &[b * n, self.order * self.in_channels]);
        let w = tape.param(store, self.weight);
        let bias = tape.param(store, self.bias);
        let y = tape.matmul(flat, w);
        let yb = tape.add(y, bias);
        tape.reshape(yb, &[b, n, self.out_channels])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_adjacency_one_hop_counts() {
        // 3x3 grid, 1 hop, 8-neighbourhood: the centre has 8 neighbours,
        // corners have 3.
        let a = grid_adjacency(3, 3, 1);
        let centre: f32 = (0..9).map(|j| a.get(&[4, j])).sum();
        let corner: f32 = (0..9).map(|j| a.get(&[0, j])).sum();
        assert_eq!(centre, 8.0);
        assert_eq!(corner, 3.0);
        // Symmetric, no self-loops.
        for i in 0..9 {
            assert_eq!(a.get(&[i, i]), 0.0);
            for j in 0..9 {
                assert_eq!(a.get(&[i, j]), a.get(&[j, i]));
            }
        }
    }

    #[test]
    fn grid_adjacency_two_hops_reaches_farther() {
        let a1 = grid_adjacency(4, 4, 1);
        let a2 = grid_adjacency(4, 4, 2);
        // Cell 0 and cell (2,2)=10 are 2 hops apart.
        assert_eq!(a1.get(&[0, 10]), 0.0);
        assert_eq!(a2.get(&[0, 10]), 1.0);
    }

    #[test]
    fn laplacian_rows_sum_to_zero_on_regular_graph() {
        // For a connected graph the unnormalised property L·1 = 0 holds for
        // the random-walk Laplacian; for the symmetric version we check the
        // eigen-structure indirectly: L is symmetric with diagonal 1.
        let a = grid_adjacency(3, 3, 1);
        let l = normalized_laplacian(&a);
        for i in 0..9 {
            assert_eq!(l.get(&[i, i]), 1.0);
            for j in 0..9 {
                assert!((l.get(&[i, j]) - l.get(&[j, i])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn laplacian_handles_isolated_nodes() {
        let a = Tensor::zeros(&[3, 3]);
        let l = normalized_laplacian(&a);
        // Identity for a graph with no edges.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(l.get(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn chebconv_shapes_and_grads() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let conv = ChebConv::new(&mut store, "gc", 2, 4, 3, &mut rng);
        assert_eq!(conv.order(), 3);
        assert_eq!(conv.out_channels(), 4);
        let a = grid_adjacency(3, 3, 1);
        let lap = scaled_laplacian(&normalized_laplacian(&a));
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 9, 2]));
        let y = conv.forward(&mut tape, x, &lap, &store);
        assert_eq!(tape.value(y).shape(), &[2, 9, 4]);
        let loss = tape.sum(y);
        tape.backward(loss, &mut store);
        for (id, _, _) in store.iter().collect::<Vec<_>>() {
            assert!(store.grad(id).abs().sum() > 0.0);
        }
    }

    #[test]
    fn chebconv_order_one_is_pointwise_linear() {
        // K=1 uses only T_0 = x: the Laplacian must not matter.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let conv = ChebConv::new(&mut store, "gc", 2, 2, 1, &mut rng);
        let a = grid_adjacency(2, 2, 1);
        let lap1 = scaled_laplacian(&normalized_laplacian(&a));
        let lap2 = Tensor::zeros(&[4, 4]);
        let x_t = Tensor::rand_uniform(&[1, 4, 2], -1.0, 1.0, &mut rng);
        let run = |lap: &Tensor| {
            let mut tape = Tape::new();
            let x = tape.constant(x_t.clone());
            let y = conv.forward(&mut tape, x, lap, &store);
            tape.value(y).clone()
        };
        bikecap_tensor::assert_close(&run(&lap1), &run(&lap2), 1e-6);
    }
}
