//! PredRNN / PredRNN++ building blocks: the spatio-temporal LSTM cell, the
//! causal LSTM cell and the gradient highway unit.
//!
//! These reproduce Wang et al. (NeurIPS 2017) and Wang et al. (ICML 2018) at
//! the fidelity needed for the paper's baseline comparison: all gate
//! transforms are same-padded 2-D convolutions, the spatio-temporal memory
//! `M` zigzags across layers and time in the forecaster that drives the
//! cells (see `bikecap-baselines`).

use bikecap_autograd::{ParamId, ParamStore, Tape, Var};
use bikecap_tensor::Tensor;
use rand::Rng;

use crate::init::glorot_uniform;

fn conv_param<R: Rng + ?Sized>(
    store: &mut ParamStore,
    name: String,
    out_c: usize,
    in_c: usize,
    k: usize,
    rng: &mut R,
) -> ParamId {
    store.add(
        name,
        glorot_uniform(&[out_c, in_c, k, k], in_c * k * k, out_c * k * k, rng),
    )
}

/// PredRNN's spatio-temporal LSTM cell (ST-LSTM).
///
/// Carries two memories: the classic cell state `C` (per layer, across time)
/// and the spatio-temporal memory `M` (handed from the top layer at `t-1` to
/// the bottom layer at `t`).
#[derive(Debug, Clone)]
pub struct StLstmCell {
    wx: ParamId,  // X -> 7*Ch: g, i, f, g', i', f', o
    wh: ParamId,  // H -> 4*Ch: g, i, f, o
    wm: ParamId,  // M -> 3*Ch: g', i', f'
    wco: ParamId, // C_t -> Ch (output-gate term)
    wmo: ParamId, // M_t -> Ch (output-gate term)
    w11: ParamId, // [C_t, M_t] -> Ch, 1x1
    bias: ParamId,
    hidden: usize,
    kernel: usize,
}

impl StLstmCell {
    /// Registers an ST-LSTM cell with square same-padded `kernel` convolutions.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        hidden_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel % 2 == 1, "StLstmCell requires an odd kernel, got {kernel}");
        let ch = hidden_channels;
        StLstmCell {
            wx: conv_param(store, format!("{name}.wx"), 7 * ch, in_channels, kernel, rng),
            wh: conv_param(store, format!("{name}.wh"), 4 * ch, ch, kernel, rng),
            wm: conv_param(store, format!("{name}.wm"), 3 * ch, ch, kernel, rng),
            wco: conv_param(store, format!("{name}.wco"), ch, ch, kernel, rng),
            wmo: conv_param(store, format!("{name}.wmo"), ch, ch, kernel, rng),
            w11: conv_param(store, format!("{name}.w11"), ch, 2 * ch, 1, rng),
            bias: store.add(format!("{name}.bias"), Tensor::zeros(&[1, 7 * ch, 1, 1])),
            hidden: ch,
            kernel,
        }
    }

    /// Hidden/memory channel count.
    pub fn hidden_channels(&self) -> usize {
        self.hidden
    }

    /// Fresh zero `(h, c, m)` state maps.
    pub fn zero_state(&self, batch: usize, height: usize, width: usize) -> (Tensor, Tensor, Tensor) {
        let s = [batch, self.hidden, height, width];
        (Tensor::zeros(&s), Tensor::zeros(&s), Tensor::zeros(&s))
    }

    /// One step: `(x, h, c, m) -> (h', c', m')`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn step(
        &self,
        tape: &mut Tape,
        x: Var,
        h: Var,
        c: Var,
        m: Var,
        store: &ParamStore,
    ) -> (Var, Var, Var) {
        let pad = self.kernel / 2;
        let ch = self.hidden;
        let wx = tape.param(store, self.wx);
        let wh = tape.param(store, self.wh);
        let wm = tape.param(store, self.wm);
        let bias = tape.param(store, self.bias);

        let gx0 = tape.conv2d(x, wx, (1, 1), (pad, pad));
        let gx = tape.add(gx0, bias);
        let gh = tape.conv2d(h, wh, (1, 1), (pad, pad));
        let gm = tape.conv2d(m, wm, (1, 1), (pad, pad));

        // Split the X projections.
        let xg = tape.narrow(gx, 1, 0, ch);
        let xi = tape.narrow(gx, 1, ch, ch);
        let xf = tape.narrow(gx, 1, 2 * ch, ch);
        let xg2 = tape.narrow(gx, 1, 3 * ch, ch);
        let xi2 = tape.narrow(gx, 1, 4 * ch, ch);
        let xf2 = tape.narrow(gx, 1, 5 * ch, ch);
        let xo = tape.narrow(gx, 1, 6 * ch, ch);
        // H projections: g, i, f, o.
        let hg = tape.narrow(gh, 1, 0, ch);
        let hi = tape.narrow(gh, 1, ch, ch);
        let hf = tape.narrow(gh, 1, 2 * ch, ch);
        let ho = tape.narrow(gh, 1, 3 * ch, ch);
        // M projections: g', i', f'.
        let mg = tape.narrow(gm, 1, 0, ch);
        let mi = tape.narrow(gm, 1, ch, ch);
        let mf = tape.narrow(gm, 1, 2 * ch, ch);

        // Temporal memory C.
        let s1 = tape.add(xg, hg);
        let g = tape.tanh(s1);
        let s2 = tape.add(xi, hi);
        let i = tape.sigmoid(s2);
        let s3 = tape.add(xf, hf);
        let f = tape.sigmoid(s3);
        let fc = tape.mul(f, c);
        let ig = tape.mul(i, g);
        let c_new = tape.add(fc, ig);

        // Spatio-temporal memory M.
        let s4 = tape.add(xg2, mg);
        let g2 = tape.tanh(s4);
        let s5 = tape.add(xi2, mi);
        let i2 = tape.sigmoid(s5);
        let s6 = tape.add(xf2, mf);
        let f2 = tape.sigmoid(s6);
        let fm = tape.mul(f2, m);
        let ig2 = tape.mul(i2, g2);
        let m_new = tape.add(fm, ig2);

        // Output gate sees both memories.
        let wco = tape.param(store, self.wco);
        let wmo = tape.param(store, self.wmo);
        let co = tape.conv2d(c_new, wco, (1, 1), (pad, pad));
        let mo = tape.conv2d(m_new, wmo, (1, 1), (pad, pad));
        let o1 = tape.add(xo, ho);
        let o2 = tape.add(o1, co);
        let o3 = tape.add(o2, mo);
        let o = tape.sigmoid(o3);

        let w11 = tape.param(store, self.w11);
        let cm = tape.concat(&[c_new, m_new], 1);
        let mix = tape.conv2d(cm, w11, (1, 1), (0, 0));
        let tm = tape.tanh(mix);
        let h_new = tape.mul(o, tm);
        (h_new, c_new, m_new)
    }
}

/// PredRNN++'s causal LSTM cell: the two memories are updated in *cascade*
/// (`C` first, then `M` conditioned on the new `C`), deepening the
/// transition path per step.
#[derive(Debug, Clone)]
pub struct CausalLstmCell {
    wx: ParamId,  // X -> 7*Ch: g, i, f, g', i', f', o
    wh: ParamId,  // H -> 3*Ch: g, i, f
    wc: ParamId,  // C -> 3*Ch: g, i, f
    wc2: ParamId, // C_t -> 3*Ch: g', i', f' (cascade stage)
    wm: ParamId,  // M -> 3*Ch: g', i', f'
    wmm: ParamId, // M -> Ch (forget path tanh)
    wco: ParamId, // C_t -> Ch (output-gate term)
    wmo: ParamId, // M_t -> Ch (output-gate term)
    who: ParamId, // H -> Ch (output-gate term)
    w11: ParamId, // [C_t, M_t] -> Ch, 1x1
    bias: ParamId,
    hidden: usize,
    kernel: usize,
}

impl CausalLstmCell {
    /// Registers a causal LSTM cell with square same-padded `kernel`
    /// convolutions.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        hidden_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel % 2 == 1, "CausalLstmCell requires an odd kernel, got {kernel}");
        let ch = hidden_channels;
        CausalLstmCell {
            wx: conv_param(store, format!("{name}.wx"), 7 * ch, in_channels, kernel, rng),
            wh: conv_param(store, format!("{name}.wh"), 3 * ch, ch, kernel, rng),
            wc: conv_param(store, format!("{name}.wc"), 3 * ch, ch, kernel, rng),
            wc2: conv_param(store, format!("{name}.wc2"), 3 * ch, ch, kernel, rng),
            wm: conv_param(store, format!("{name}.wm"), 3 * ch, ch, kernel, rng),
            wmm: conv_param(store, format!("{name}.wmm"), ch, ch, kernel, rng),
            wco: conv_param(store, format!("{name}.wco"), ch, ch, kernel, rng),
            wmo: conv_param(store, format!("{name}.wmo"), ch, ch, kernel, rng),
            who: conv_param(store, format!("{name}.who"), ch, ch, kernel, rng),
            w11: conv_param(store, format!("{name}.w11"), ch, 2 * ch, 1, rng),
            bias: store.add(format!("{name}.bias"), Tensor::zeros(&[1, 7 * ch, 1, 1])),
            hidden: ch,
            kernel,
        }
    }

    /// Hidden/memory channel count.
    pub fn hidden_channels(&self) -> usize {
        self.hidden
    }

    /// Fresh zero `(h, c, m)` state maps.
    pub fn zero_state(&self, batch: usize, height: usize, width: usize) -> (Tensor, Tensor, Tensor) {
        let s = [batch, self.hidden, height, width];
        (Tensor::zeros(&s), Tensor::zeros(&s), Tensor::zeros(&s))
    }

    /// One step: `(x, h, c, m) -> (h', c', m')` with the cascaded update.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn step(
        &self,
        tape: &mut Tape,
        x: Var,
        h: Var,
        c: Var,
        m: Var,
        store: &ParamStore,
    ) -> (Var, Var, Var) {
        let pad = self.kernel / 2;
        let ch = self.hidden;
        let wx = tape.param(store, self.wx);
        let wh = tape.param(store, self.wh);
        let wc = tape.param(store, self.wc);
        let bias = tape.param(store, self.bias);

        let gx0 = tape.conv2d(x, wx, (1, 1), (pad, pad));
        let gx = tape.add(gx0, bias);
        let gh = tape.conv2d(h, wh, (1, 1), (pad, pad));
        let gc = tape.conv2d(c, wc, (1, 1), (pad, pad));

        let xg = tape.narrow(gx, 1, 0, ch);
        let xi = tape.narrow(gx, 1, ch, ch);
        let xf = tape.narrow(gx, 1, 2 * ch, ch);
        let xg2 = tape.narrow(gx, 1, 3 * ch, ch);
        let xi2 = tape.narrow(gx, 1, 4 * ch, ch);
        let xf2 = tape.narrow(gx, 1, 5 * ch, ch);
        let xo = tape.narrow(gx, 1, 6 * ch, ch);
        let hg = tape.narrow(gh, 1, 0, ch);
        let hi = tape.narrow(gh, 1, ch, ch);
        let hf = tape.narrow(gh, 1, 2 * ch, ch);
        let cg = tape.narrow(gc, 1, 0, ch);
        let ci = tape.narrow(gc, 1, ch, ch);
        let cf = tape.narrow(gc, 1, 2 * ch, ch);

        // Stage 1: temporal memory C (conditioned on X, H, C).
        let s1a = tape.add(xg, hg);
        let s1 = tape.add(s1a, cg);
        let g = tape.tanh(s1);
        let s2a = tape.add(xi, hi);
        let s2 = tape.add(s2a, ci);
        let i = tape.sigmoid(s2);
        let s3a = tape.add(xf, hf);
        let s3 = tape.add(s3a, cf);
        let f = tape.sigmoid(s3);
        let fc = tape.mul(f, c);
        let ig = tape.mul(i, g);
        let c_new = tape.add(fc, ig);

        // Stage 2: spatio-temporal memory M (conditioned on X, C_t, M).
        let wc2 = tape.param(store, self.wc2);
        let wm = tape.param(store, self.wm);
        let wmm = tape.param(store, self.wmm);
        let gc2 = tape.conv2d(c_new, wc2, (1, 1), (pad, pad));
        let gm = tape.conv2d(m, wm, (1, 1), (pad, pad));
        let c2g = tape.narrow(gc2, 1, 0, ch);
        let c2i = tape.narrow(gc2, 1, ch, ch);
        let c2f = tape.narrow(gc2, 1, 2 * ch, ch);
        let mg = tape.narrow(gm, 1, 0, ch);
        let mi = tape.narrow(gm, 1, ch, ch);
        let mf = tape.narrow(gm, 1, 2 * ch, ch);

        let s4a = tape.add(xg2, c2g);
        let s4 = tape.add(s4a, mg);
        let g2 = tape.tanh(s4);
        let s5a = tape.add(xi2, c2i);
        let s5 = tape.add(s5a, mi);
        let i2 = tape.sigmoid(s5);
        let s6a = tape.add(xf2, c2f);
        let s6 = tape.add(s6a, mf);
        let f2 = tape.sigmoid(s6);
        let m_mix = tape.conv2d(m, wmm, (1, 1), (pad, pad));
        let m_tan = tape.tanh(m_mix);
        let fm = tape.mul(f2, m_tan);
        let ig2 = tape.mul(i2, g2);
        let m_new = tape.add(fm, ig2);

        // Output gate sees X, H, C_t, M_t.
        let wco = tape.param(store, self.wco);
        let wmo = tape.param(store, self.wmo);
        let who = tape.param(store, self.who);
        let co = tape.conv2d(c_new, wco, (1, 1), (pad, pad));
        let mo = tape.conv2d(m_new, wmo, (1, 1), (pad, pad));
        let ho = tape.conv2d(h, who, (1, 1), (pad, pad));
        let o1 = tape.add(xo, ho);
        let o2 = tape.add(o1, co);
        let o3 = tape.add(o2, mo);
        let o = tape.sigmoid(o3);

        let w11 = tape.param(store, self.w11);
        let cm = tape.concat(&[c_new, m_new], 1);
        let mix = tape.conv2d(cm, w11, (1, 1), (0, 0));
        let tm = tape.tanh(mix);
        let h_new = tape.mul(o, tm);
        (h_new, c_new, m_new)
    }
}

/// PredRNN++'s gradient highway unit (GHU): a gated skip path across time
/// that alleviates vanishing gradients in deep-in-time unrollings.
#[derive(Debug, Clone)]
pub struct GradientHighwayUnit {
    wpx: ParamId,
    wpz: ParamId,
    wsx: ParamId,
    wsz: ParamId,
    hidden: usize,
    kernel: usize,
}

impl GradientHighwayUnit {
    /// Registers a GHU with square same-padded `kernel` convolutions.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        hidden_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel % 2 == 1, "GradientHighwayUnit requires an odd kernel");
        GradientHighwayUnit {
            wpx: conv_param(store, format!("{name}.wpx"), hidden_channels, in_channels, kernel, rng),
            wpz: conv_param(store, format!("{name}.wpz"), hidden_channels, hidden_channels, kernel, rng),
            wsx: conv_param(store, format!("{name}.wsx"), hidden_channels, in_channels, kernel, rng),
            wsz: conv_param(store, format!("{name}.wsz"), hidden_channels, hidden_channels, kernel, rng),
            hidden: hidden_channels,
            kernel,
        }
    }

    /// Highway state channel count.
    pub fn hidden_channels(&self) -> usize {
        self.hidden
    }

    /// Fresh zero highway state.
    pub fn zero_state(&self, batch: usize, height: usize, width: usize) -> Tensor {
        Tensor::zeros(&[batch, self.hidden, height, width])
    }

    /// One step: `z' = s ∘ p + (1 - s) ∘ z`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn step(&self, tape: &mut Tape, x: Var, z: Var, store: &ParamStore) -> Var {
        let pad = self.kernel / 2;
        let wpx = tape.param(store, self.wpx);
        let wpz = tape.param(store, self.wpz);
        let wsx = tape.param(store, self.wsx);
        let wsz = tape.param(store, self.wsz);
        let px = tape.conv2d(x, wpx, (1, 1), (pad, pad));
        let pz = tape.conv2d(z, wpz, (1, 1), (pad, pad));
        let psum = tape.add(px, pz);
        let p = tape.tanh(psum);
        let sx = tape.conv2d(x, wsx, (1, 1), (pad, pad));
        let sz = tape.conv2d(z, wsz, (1, 1), (pad, pad));
        let ssum = tape.add(sx, sz);
        let s = tape.sigmoid(ssum);
        let sp = tape.mul(s, p);
        let ones = tape.constant(Tensor::ones(tape.value(s).shape()));
        let inv = tape.sub(ones, s);
        let carry = tape.mul(inv, z);
        tape.add(sp, carry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    #[test]
    fn st_lstm_shapes_and_memory_flow() {
        let mut store = ParamStore::new();
        let cell = StLstmCell::new(&mut store, "st", 2, 3, 3, &mut rng());
        assert_eq!(cell.hidden_channels(), 3);
        let (h0, c0, m0) = cell.zero_state(1, 4, 4);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[1, 2, 4, 4]));
        let h = tape.constant(h0);
        let c = tape.constant(c0);
        let m = tape.constant(m0);
        let (h1, c1, m1) = cell.step(&mut tape, x, h, c, m, &store);
        assert_eq!(tape.value(h1).shape(), &[1, 3, 4, 4]);
        assert_eq!(tape.value(c1).shape(), &[1, 3, 4, 4]);
        assert_eq!(tape.value(m1).shape(), &[1, 3, 4, 4]);
        // The memories must actually move away from zero.
        assert!(tape.value(c1).abs().sum() > 0.0);
        assert!(tape.value(m1).abs().sum() > 0.0);
    }

    #[test]
    fn st_lstm_all_params_receive_gradient() {
        let mut store = ParamStore::new();
        let cell = StLstmCell::new(&mut store, "st", 1, 2, 3, &mut rng());
        let (h0, c0, m0) = cell.zero_state(1, 3, 3);
        let mut tape = Tape::new();
        let mut h = tape.constant(h0);
        let mut c = tape.constant(c0);
        let mut m = tape.constant(m0);
        // Two steps so the hidden state is non-zero and every weight matrix
        // (including the H projections) contributes to the loss.
        for _ in 0..2 {
            let x = tape.constant(Tensor::ones(&[1, 1, 3, 3]));
            let (nh, nc, nm) = cell.step(&mut tape, x, h, c, m, &store);
            h = nh;
            c = nc;
            m = nm;
        }
        let loss = tape.sum(h);
        tape.backward(loss, &mut store);
        for (id, _, _) in store.iter().collect::<Vec<_>>() {
            assert!(
                store.grad(id).abs().sum() > 0.0,
                "no gradient for {}",
                store.name(id)
            );
        }
    }

    #[test]
    fn causal_lstm_shapes_and_cascade() {
        let mut store = ParamStore::new();
        let cell = CausalLstmCell::new(&mut store, "cz", 2, 3, 3, &mut rng());
        let (h0, c0, m0) = cell.zero_state(2, 4, 4);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 2, 4, 4]));
        let h = tape.constant(h0);
        let c = tape.constant(c0);
        let m = tape.constant(m0);
        let (h1, c1, m1) = cell.step(&mut tape, x, h, c, m, &store);
        assert_eq!(tape.value(h1).shape(), &[2, 3, 4, 4]);
        assert!(tape.value(c1).abs().sum() > 0.0);
        assert!(tape.value(m1).abs().sum() > 0.0);
    }

    #[test]
    fn causal_lstm_all_params_receive_gradient() {
        let mut store = ParamStore::new();
        let cell = CausalLstmCell::new(&mut store, "cz", 1, 2, 3, &mut rng());
        let (h0, c0, m0) = cell.zero_state(1, 3, 3);
        let mut tape = Tape::new();
        let mut h = tape.constant(h0);
        let mut c = tape.constant(c0);
        let mut m = tape.constant(m0);
        for _ in 0..2 {
            let x = tape.constant(Tensor::ones(&[1, 1, 3, 3]));
            let (nh, nc, nm) = cell.step(&mut tape, x, h, c, m, &store);
            h = nh;
            c = nc;
            m = nm;
        }
        let loss = tape.sum(h);
        tape.backward(loss, &mut store);
        for (id, _, _) in store.iter().collect::<Vec<_>>() {
            assert!(
                store.grad(id).abs().sum() > 0.0,
                "no gradient for {}",
                store.name(id)
            );
        }
    }

    #[test]
    fn ghu_zero_gate_carries_state() {
        // With all-zero parameters s = sigmoid(0) = 0.5, so z' = 0.5 p + 0.5 z;
        // with zero inputs p = 0, so z' = 0.5 z.
        let mut store = ParamStore::new();
        let ghu = GradientHighwayUnit::new(&mut store, "ghu", 1, 2, 3, &mut rng());
        // Zero all parameters.
        let ids: Vec<_> = store.iter().map(|(id, _, v)| (id, v.shape().to_vec())).collect();
        for (id, shape) in ids {
            store.set_value(id, Tensor::zeros(&shape));
        }
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(&[1, 1, 3, 3]));
        let z = tape.constant(Tensor::full(&[1, 2, 3, 3], 2.0));
        let z1 = ghu.step(&mut tape, x, z, &store);
        for &v in tape.value(z1).as_slice() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn ghu_shapes() {
        let mut store = ParamStore::new();
        let ghu = GradientHighwayUnit::new(&mut store, "ghu", 2, 3, 3, &mut rng());
        assert_eq!(ghu.hidden_channels(), 3);
        let z0 = ghu.zero_state(2, 5, 5);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 2, 5, 5]));
        let z = tape.constant(z0);
        let z1 = ghu.step(&mut tape, x, z, &store);
        assert_eq!(tape.value(z1).shape(), &[2, 3, 5, 5]);
    }
}
