//! Recurrent cells: LSTM and convolutional LSTM.

use bikecap_autograd::{ParamId, ParamStore, Tape, Var};
use bikecap_tensor::Tensor;
use rand::Rng;

use crate::init::glorot_uniform;

/// A standard LSTM cell (Hochreiter & Schmidhuber, 1997), the paper's `LSTM`
/// baseline building block.
///
/// Gate order in the packed weight is `i, f, g, o`. The forget-gate bias is
/// initialised to 1, the usual trick for stable early training.
#[derive(Debug, Clone)]
pub struct LstmCell {
    wx: ParamId,
    wh: ParamId,
    bias: ParamId,
    hidden: usize,
}

impl LstmCell {
    /// Registers an LSTM cell mapping `input_size` features to a
    /// `hidden_size` state.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        input_size: usize,
        hidden_size: usize,
        rng: &mut R,
    ) -> Self {
        let wx = store.add(
            format!("{name}.wx"),
            glorot_uniform(
                &[input_size, 4 * hidden_size],
                input_size,
                4 * hidden_size,
                rng,
            ),
        );
        let wh = store.add(
            format!("{name}.wh"),
            glorot_uniform(
                &[hidden_size, 4 * hidden_size],
                hidden_size,
                4 * hidden_size,
                rng,
            ),
        );
        // Bias layout [i | f | g | o]; forget gate biased to 1.
        let mut b = Tensor::zeros(&[1, 4 * hidden_size]);
        for j in hidden_size..2 * hidden_size {
            b.set(&[0, j], 1.0);
        }
        let bias = store.add(format!("{name}.bias"), b);
        LstmCell {
            wx,
            wh,
            bias,
            hidden: hidden_size,
        }
    }

    /// The hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Fresh zero `(h, c)` state tensors for a batch.
    pub fn zero_state(&self, batch: usize) -> (Tensor, Tensor) {
        (
            Tensor::zeros(&[batch, self.hidden]),
            Tensor::zeros(&[batch, self.hidden]),
        )
    }

    /// One step: consumes `x (N, in)` and state `(h, c)`, returns the new
    /// `(h, c)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn step(
        &self,
        tape: &mut Tape,
        x: Var,
        state: (Var, Var),
        store: &ParamStore,
    ) -> (Var, Var) {
        let (h, c) = state;
        let wx = tape.param(store, self.wx);
        let wh = tape.param(store, self.wh);
        let b = tape.param(store, self.bias);
        let gx = tape.matmul(x, wx);
        let gh = tape.matmul(h, wh);
        let s = tape.add(gx, gh);
        let gates = tape.add(s, b);
        let hid = self.hidden;
        let i_raw = tape.narrow(gates, 1, 0, hid);
        let f_raw = tape.narrow(gates, 1, hid, hid);
        let g_raw = tape.narrow(gates, 1, 2 * hid, hid);
        let o_raw = tape.narrow(gates, 1, 3 * hid, hid);
        let i = tape.sigmoid(i_raw);
        let f = tape.sigmoid(f_raw);
        let g = tape.tanh(g_raw);
        let o = tape.sigmoid(o_raw);
        let fc = tape.mul(f, c);
        let ig = tape.mul(i, g);
        let c_new = tape.add(fc, ig);
        let tc = tape.tanh(c_new);
        let h_new = tape.mul(o, tc);
        (h_new, c_new)
    }
}

/// A convolutional LSTM cell (Shi et al., 2015), the `convLSTM` baseline
/// building block. States are `(N, C_h, H, W)` maps; all gate transforms are
/// same-padded 2-D convolutions. (We omit the optional Hadamard peephole
/// terms of the original formulation; see DESIGN.md.)
#[derive(Debug, Clone)]
pub struct ConvLstmCell {
    wx: ParamId,
    wh: ParamId,
    bias: ParamId,
    hidden_channels: usize,
    kernel: usize,
}

impl ConvLstmCell {
    /// Registers a convLSTM cell with a square `kernel x kernel` filter
    /// (odd kernels preserve extents).
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        hidden_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel % 2 == 1, "ConvLstmCell requires an odd kernel, got {kernel}");
        let kk = kernel * kernel;
        let wx = store.add(
            format!("{name}.wx"),
            glorot_uniform(
                &[4 * hidden_channels, in_channels, kernel, kernel],
                in_channels * kk,
                4 * hidden_channels * kk,
                rng,
            ),
        );
        let wh = store.add(
            format!("{name}.wh"),
            glorot_uniform(
                &[4 * hidden_channels, hidden_channels, kernel, kernel],
                hidden_channels * kk,
                4 * hidden_channels * kk,
                rng,
            ),
        );
        let mut b = Tensor::zeros(&[1, 4 * hidden_channels, 1, 1]);
        for j in hidden_channels..2 * hidden_channels {
            b.set(&[0, j, 0, 0], 1.0);
        }
        let bias = store.add(format!("{name}.bias"), b);
        ConvLstmCell {
            wx,
            wh,
            bias,
            hidden_channels,
            kernel,
        }
    }

    /// Hidden state channel count.
    pub fn hidden_channels(&self) -> usize {
        self.hidden_channels
    }

    /// Fresh zero `(h, c)` state maps for a batch over an `(H, W)` grid.
    pub fn zero_state(&self, batch: usize, height: usize, width: usize) -> (Tensor, Tensor) {
        let shape = [batch, self.hidden_channels, height, width];
        (Tensor::zeros(&shape), Tensor::zeros(&shape))
    }

    /// One step: consumes `x (N, C_in, H, W)` and state `(h, c)`, returns the
    /// new `(h, c)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn step(
        &self,
        tape: &mut Tape,
        x: Var,
        state: (Var, Var),
        store: &ParamStore,
    ) -> (Var, Var) {
        let (h, c) = state;
        let pad = self.kernel / 2;
        let wx = tape.param(store, self.wx);
        let wh = tape.param(store, self.wh);
        let b = tape.param(store, self.bias);
        let gx = tape.conv2d(x, wx, (1, 1), (pad, pad));
        let gh = tape.conv2d(h, wh, (1, 1), (pad, pad));
        let s = tape.add(gx, gh);
        let gates = tape.add(s, b);
        let ch = self.hidden_channels;
        let i_raw = tape.narrow(gates, 1, 0, ch);
        let f_raw = tape.narrow(gates, 1, ch, ch);
        let g_raw = tape.narrow(gates, 1, 2 * ch, ch);
        let o_raw = tape.narrow(gates, 1, 3 * ch, ch);
        let i = tape.sigmoid(i_raw);
        let f = tape.sigmoid(f_raw);
        let g = tape.tanh(g_raw);
        let o = tape.sigmoid(o_raw);
        let fc = tape.mul(f, c);
        let ig = tape.mul(i, g);
        let c_new = tape.add(fc, ig);
        let tc = tape.tanh(c_new);
        let h_new = tape.mul(o, tc);
        (h_new, c_new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn lstm_step_shapes() {
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 3, 5, &mut rng());
        assert_eq!(cell.hidden_size(), 5);
        let (h0, c0) = cell.zero_state(2);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3]));
        let h = tape.constant(h0);
        let c = tape.constant(c0);
        let (h1, c1) = cell.step(&mut tape, x, (h, c), &store);
        assert_eq!(tape.value(h1).shape(), &[2, 5]);
        assert_eq!(tape.value(c1).shape(), &[2, 5]);
        // tanh-bounded hidden state.
        assert!(tape.value(h1).max_value() <= 1.0);
        assert!(tape.value(h1).min_value() >= -1.0);
    }

    #[test]
    fn lstm_state_evolves_and_grads_flow_through_time() {
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng());
        let (h0, c0) = cell.zero_state(1);
        let mut tape = Tape::new();
        let mut h = tape.constant(h0);
        let mut c = tape.constant(c0);
        for step in 0..4 {
            let x = tape.constant(Tensor::full(&[1, 2], step as f32 * 0.3));
            let (nh, nc) = cell.step(&mut tape, x, (h, c), &store);
            h = nh;
            c = nc;
        }
        let loss = tape.sum(h);
        tape.backward(loss, &mut store);
        for (id, _, _) in store.iter().collect::<Vec<_>>() {
            assert!(
                store.grad(id).abs().sum() > 0.0,
                "no gradient for {}",
                store.name(id)
            );
        }
    }

    #[test]
    fn lstm_forget_bias_initialised_to_one() {
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng());
        let bid = store.iter().find(|(_, n, _)| *n == "lstm.bias").unwrap().0;
        let b = store.value(bid);
        assert_eq!(b.get(&[0, 3]), 1.0); // forget block starts at hidden
        assert_eq!(b.get(&[0, 0]), 0.0);
        drop(cell);
    }

    #[test]
    fn conv_lstm_step_shapes() {
        let mut store = ParamStore::new();
        let cell = ConvLstmCell::new(&mut store, "cl", 2, 4, 3, &mut rng());
        assert_eq!(cell.hidden_channels(), 4);
        let (h0, c0) = cell.zero_state(2, 5, 5);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 2, 5, 5]));
        let h = tape.constant(h0);
        let c = tape.constant(c0);
        let (h1, c1) = cell.step(&mut tape, x, (h, c), &store);
        assert_eq!(tape.value(h1).shape(), &[2, 4, 5, 5]);
        assert_eq!(tape.value(c1).shape(), &[2, 4, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn conv_lstm_rejects_even_kernel() {
        let mut store = ParamStore::new();
        let _ = ConvLstmCell::new(&mut store, "cl", 1, 1, 4, &mut rng());
    }

    #[test]
    fn conv_lstm_two_steps_grads_flow() {
        let mut store = ParamStore::new();
        let cell = ConvLstmCell::new(&mut store, "cl", 1, 2, 3, &mut rng());
        let (h0, c0) = cell.zero_state(1, 4, 4);
        let mut tape = Tape::new();
        let mut h = tape.constant(h0);
        let mut c = tape.constant(c0);
        for _ in 0..2 {
            let x = tape.constant(Tensor::ones(&[1, 1, 4, 4]));
            let (nh, nc) = cell.step(&mut tape, x, (h, c), &store);
            h = nh;
            c = nc;
        }
        let loss = tape.sum(h);
        tape.backward(loss, &mut store);
        for (id, _, _) in store.iter().collect::<Vec<_>>() {
            assert!(store.grad(id).abs().sum() > 0.0);
        }
    }
}
