//! Fully connected layer.

use bikecap_autograd::{ParamId, ParamStore, Tape, Var};
use bikecap_tensor::Tensor;
use rand::Rng;

use crate::init::glorot_uniform;

/// A fully connected layer: `y = x W + b` with `x: (batch, in)`,
/// `W: (in, out)`, `b: (1, out)`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: ParamId,
    bias: ParamId,
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// Registers a dense layer's parameters under `name.weight` / `name.bias`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        let weight = store.add(
            format!("{name}.weight"),
            glorot_uniform(&[in_features, out_features], in_features, out_features, rng),
        );
        let bias = store.add(format!("{name}.bias"), Tensor::zeros(&[1, out_features]));
        Dense {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Applies the layer to a `(batch, in)` var.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 2 with `in_features` columns.
    pub fn forward(&self, tape: &mut Tape, x: Var, store: &ParamStore) -> Var {
        let w = tape.param(store, self.weight);
        let b = tape.param(store, self.bias);
        let xw = tape.matmul(x, w);
        tape.add(xw, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(&mut store, "fc", 3, 2, &mut rng);
        assert_eq!(layer.in_features(), 3);
        assert_eq!(layer.out_features(), 2);
        // Zero the weight so output equals the bias.
        let wid = store.iter().find(|(_, n, _)| *n == "fc.weight").unwrap().0;
        store.set_value(wid, Tensor::zeros(&[3, 2]));
        let bid = store.iter().find(|(_, n, _)| *n == "fc.bias").unwrap().0;
        store.set_value(bid, Tensor::from_vec(vec![1.0, -1.0], &[1, 2]));

        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[4, 3]));
        let y = layer.forward(&mut tape, x, &store);
        assert_eq!(tape.value(y).shape(), &[4, 2]);
        assert_eq!(tape.value(y).get(&[2, 0]), 1.0);
        assert_eq!(tape.value(y).get(&[2, 1]), -1.0);
    }

    #[test]
    fn gradients_reach_both_parameters() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(&mut store, "fc", 3, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3]));
        let y = layer.forward(&mut tape, x, &store);
        let loss = tape.sum(y);
        tape.backward(loss, &mut store);
        for (id, _, _) in store.iter().collect::<Vec<_>>() {
            assert!(store.grad(id).abs().sum() > 0.0, "parameter received no gradient");
        }
    }

    #[test]
    fn can_fit_a_linear_map() {
        // One dense layer trained by plain gradient descent should recover
        // y = 2x + 1 on a 1-D problem.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Dense::new(&mut store, "fc", 1, 1, &mut rng);
        let xs = Tensor::from_vec((0..16).map(|i| i as f32 / 8.0).collect(), &[16, 1]);
        let ys = xs.scale(2.0).add_scalar(1.0);
        for _ in 0..400 {
            store.zero_grads();
            let mut tape = Tape::new();
            let x = tape.constant(xs.clone());
            let t = tape.constant(ys.clone());
            let p = layer.forward(&mut tape, x, &store);
            let loss = tape.mse_loss(p, t);
            tape.backward(loss, &mut store);
            store.update(|_, v, g| v.add_assign_(&g.scale(-0.1)));
        }
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![1.0], &[1, 1]));
        let p = layer.forward(&mut tape, x, &store);
        assert!((tape.value(p).item() - 3.0).abs() < 0.05);
    }
}
