//! Quickstart: simulate a city, train BikeCAP, forecast multi-step bike
//! demand and score it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bikecap::eval::{evaluate, BikeCapForecaster, Metrics};
use bikecap::model::{BikeCap, BikeCapConfig, TrainOptions};
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    layout::CityLayout,
    ForecastDataset, Split,
};
use bikecap::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Simulate ten days of a Shenzhen-like city: subway lines whose rush
    //    hours lead the bike demand around their stations.
    let mut rng = StdRng::seed_from_u64(42);
    let mut config = SimConfig::paper_scale();
    config.days = 10;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    println!(
        "simulated {} subway trips and {} bike trips on a {}x{} grid",
        trips.subway_trips(),
        trips.bike_trips(),
        trips.layout.height,
        trips.layout.width
    );

    // 2. Aggregate records into 15-minute demand tensors and build sliding
    //    windows: 2 hours of history, 1 hour (4 slots) of future.
    let series = DemandSeries::from_trips(&trips, 15);
    let dataset = ForecastDataset::new(&series, 8, 4);
    println!(
        "dataset: {} train / {} val / {} test windows",
        dataset.anchors(Split::Train).len(),
        dataset.anchors(Split::Val).len(),
        dataset.anchors(Split::Test).len()
    );

    // 3. Train BikeCAP (briefly — raise the budget for better accuracy).
    let model_config = BikeCapConfig::new(trips.layout.height, trips.layout.width)
        .history(8)
        .horizon(4);
    let mut model = BikeCap::new(model_config, &mut rng);
    println!("BikeCAP has {} learnable parameters", model.num_parameters());
    let options = TrainOptions {
        epochs: 10,
        batch_size: 16,
        max_batches_per_epoch: Some(16),
        learning_rate: 3e-3,
        ..TrainOptions::default()
    };
    let report = model.fit(&dataset, &options, &mut rng);
    println!(
        "trained {} epochs in {:.1}s (loss {:.4} -> {:.4})",
        report.epoch_losses.len(),
        report.seconds,
        report.epoch_losses[0],
        report.final_loss().unwrap_or(f32::NAN)
    );

    // 4. Forecast one test window (mid-split, i.e. around midday) and
    //    inspect the multi-step output.
    let anchors = dataset.anchors(Split::Test);
    let batch = dataset.batch(&anchors[anchors.len() / 2..anchors.len() / 2 + 1]);
    let forecast = dataset.denormalize_target(&model.predict(&batch.input));
    let truth = dataset.denormalize_target(&batch.target);
    println!("\nforecast vs truth, total city demand per 15-minute step:");
    for step in 0..4 {
        let f: f32 = forecast.narrow(1, step, 1).sum();
        let t: f32 = truth.narrow(1, step, 1).sum();
        println!("  +{:>2} min: forecast {:>6.1} bikes, actual {:>6.1}", (step + 1) * 15, f, t);
    }

    // 5. Score on the whole test split against a zero baseline.
    let fc = BikeCapForecaster::new(model, options);
    let m = evaluate(&fc, &dataset, Some(32));
    let zero = ZeroForecaster;
    let z = evaluate(&zero, &dataset, Some(32));
    println!("\ntest metrics (denormalised bikes per cell-slot):");
    println!("  BikeCAP: MAE {:.3}  RMSE {:.3}", m.mae, m.rmse);
    println!("  always-zero baseline: MAE {:.3}  RMSE {:.3}", z.mae, z.rmse);
    let _ = Metrics::between(&forecast, &truth);
}

/// The trivial baseline: predicts no demand anywhere.
struct ZeroForecaster;

impl bikecap::baselines::Forecaster for ZeroForecaster {
    fn name(&self) -> &'static str {
        "zero"
    }
    fn fit(&mut self, _: &ForecastDataset, _: &mut dyn rand::RngCore) -> f32 {
        0.0
    }
    fn predict(&self, input: &Tensor, horizon: usize) -> Tensor {
        let s = input.shape();
        Tensor::zeros(&[s[0], horizon, s[3], s[4]])
    }
}
