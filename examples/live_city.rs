//! Live-city adaptation: stream a regime-shifted city through the drift
//! detector, fine-tune on confirmed drift, shadow-evaluate and hot-swap.
//!
//! ```text
//! cargo run --release --example live_city
//! ```
//!
//! The pipeline this walks through is the whole `bikecap-live` crate:
//!
//! 1. Train an incumbent on a quiet baseline city and register it in a
//!    serving slot (the same `ModelRegistry` the HTTP server uses).
//! 2. Replay a fresh record stream whose final day carries a weather
//!    shock, record by record, into a rolling 15-minute demand window.
//! 3. An eager-mode monitor copy predicts every sealed slot; its error and
//!    the routing telemetry (coupling entropy, agreement delta) drive a
//!    hysteresis state machine: Stable → Suspect → Drifted.
//! 4. On confirmed drift the incumbent is fine-tuned on the fresh window
//!    (`fit_resilient`, with autosave and divergence rollback), shadow-
//!    evaluated against the incumbent, and hot-swapped only if it wins.

use std::sync::Arc;

use bikecap::live::{AdaptOutcome, LiveConfig, LiveLoop, RecordStream};
use bikecap::model::{BikeCap, BikeCapConfig, TrainOptions};
use bikecap::serve::{Metrics, ModelRegistry, DEFAULT_MODEL};
use bikecap::sim::scenario::{Scenario, WeatherShock};
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    layout::CityLayout,
    ForecastDataset,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HISTORY: usize = 6;
const HORIZON: usize = 2;

fn main() {
    // 1. Baseline city: two quiet days to fit the incumbent on. Small grid
    //    and budgets keep the example fast; `bikecap live` runs the same
    //    loop at paper scale.
    let mut rng = StdRng::seed_from_u64(7);
    let config = SimConfig::small();
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    let series = DemandSeries::from_trips(&trips, 15);
    let dataset = ForecastDataset::new(&series, HISTORY, HORIZON);

    let mut model = BikeCap::seeded(
        BikeCapConfig::new(series.height, series.width)
            .history(HISTORY)
            .horizon(HORIZON)
            .pyramid_size(2)
            .capsule_dim(4)
            .out_capsule_dim(4)
            .decoder_channels(4),
        7,
    );
    let mut train_rng = StdRng::seed_from_u64(8);
    let report = model.fit(&dataset, &TrainOptions::smoke(), &mut train_rng);
    println!(
        "incumbent trained: loss {:.4} -> {:.4}",
        report.epoch_losses.first().copied().unwrap_or(f32::NAN),
        report.final_loss().unwrap_or(f32::NAN)
    );

    // 2. Register it as the serving model — the live loop swaps through the
    //    exact path `POST /admin/reload` uses.
    let registry = ModelRegistry::new();
    let entry = registry.insert(DEFAULT_MODEL, model);
    let metrics = Arc::new(Metrics::new());

    // 3. A fresh live stream: same city configuration; the final day
    //    carries a 3x weather-driven demand surge. The first day feeds the
    //    detector's diurnal baseline, the second proves it stays calm on
    //    ordinary traffic.
    let mut live_sim = SimConfig::small();
    live_sim.days = 3;
    live_sim.scenario = Scenario {
        weather_shock: Some(WeatherShock {
            start_min: 2880.0,
            end_min: f64::from(live_sim.total_minutes()),
            demand_factor: 3.0,
        }),
        ..Scenario::none()
    };
    let mut live_rng = StdRng::seed_from_u64(9);
    let live_layout = CityLayout::generate(&live_sim, &mut live_rng);
    let live_trips = Simulator::new(live_sim.clone(), live_layout).run(&mut live_rng);
    println!(
        "live stream: {} bike + {} subway trips, weather shock from minute 2880",
        live_trips.bike_trips(),
        live_trips.subway_trips()
    );

    // 4. Run the loop: ingest → window → detect → adapt.
    let work_dir = std::env::temp_dir().join("bikecap-live-example");
    let live_config = LiveConfig::new(HISTORY, HORIZON, dataset.normalizer().clone(), work_dir);
    let mut live = LiveLoop::new(
        Arc::clone(&entry),
        live_config,
        Some(Arc::clone(&metrics)),
        None,
    )
    .expect("live loop setup");
    let report = live
        .run(
            RecordStream::new(&live_trips),
            f64::from(live_sim.total_minutes()),
        )
        .expect("live loop run");
    bikecap::obs::clear();

    println!(
        "{} records -> {} sealed slots; detector saw:",
        report.records, report.slots
    );
    for (slot, state) in &report.transitions {
        println!("  slot {slot:>3}: -> {}", state.as_str());
    }
    for outcome in &report.outcomes {
        match outcome {
            AdaptOutcome::Swapped {
                slot,
                incumbent_mae,
                candidate_mae,
            } => println!(
                "  slot {slot:>3}: HOT-SWAP — candidate val MAE {candidate_mae:.4} beat \
                 incumbent {incumbent_mae:.4}"
            ),
            AdaptOutcome::Refused {
                slot,
                incumbent_mae,
                candidate_mae,
            } => println!(
                "  slot {slot:>3}: refused — candidate {candidate_mae:.4} vs incumbent \
                 {incumbent_mae:.4}"
            ),
            AdaptOutcome::RolledBack { slot, reason } => {
                println!("  slot {slot:>3}: rolled back — {reason}")
            }
        }
    }
    println!(
        "swaps {}, rollbacks {}, refusals {}; serving model version {}",
        report.swaps,
        report.rollbacks,
        report.refusals,
        entry.swap_count()
    );
}
