//! Explore the upstream→downstream structure the model exploits: which
//! subway stations lead which bike cells, and by how much.
//!
//! Prints the strongest (station, cell, lag) triples by lagged correlation —
//! the data-driven version of the paper's Fig. 1 narrative.
//!
//! ```text
//! cargo run --release --example upstream_signals
//! ```

use bikecap::sim::aggregate::{bike_pickups_near, lagged_correlation, station_flows};
use bikecap::sim::generate::{SimConfig, Simulator};
use bikecap::sim::layout::CityLayout;
use bikecap::sim::transfer::{estimate_transfer_times, network_mean_transfer_minutes};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut config = SimConfig::paper_scale();
    config.days = 10;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    let layout = trips.layout.clone();

    println!(
        "city: {}x{} grid, {} subway lines, {} stations\n",
        layout.height,
        layout.width,
        layout.lines.len(),
        layout.stations.len()
    );

    // For every station: correlate its *boardings* with bike pick-ups near
    // every other station, over lags 0..8 slots, and keep the best pairs.
    let mut findings: Vec<(f32, usize, String, usize)> = Vec::new();
    for origin in &layout.stations {
        let (boards, _) = station_flows(&trips, origin.id, 15);
        for dest in &layout.stations {
            if origin.id == dest.id || origin.cell == dest.cell {
                continue;
            }
            let picks = bike_pickups_near(&trips, dest.cell, 1, 15);
            let (best_lag, best_corr) = (1..8)
                .map(|lag| (lag, lagged_correlation(&boards, &picks, lag)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty lag range");
            findings.push((best_corr, origin.id, dest.name.clone(), best_lag));
        }
    }
    findings.sort_by(|a, b| b.0.total_cmp(&a.0));

    println!("strongest upstream signals (boardings at X predict bikes near Y):");
    println!("{:<10} {:>16} {:>8} {:>12}", "origin", "bike dest", "lag", "correlation");
    for (corr, origin, dest, lag) in findings.iter().take(12) {
        println!(
            "{:<10} {:>16} {:>5} min {:>12.3}",
            layout.stations[*origin].name,
            dest,
            lag * 15,
            corr
        );
    }

    // The paper's A/B narrative, quantified.
    let a = layout.most_residential_station();
    let b = layout.most_commercial_station();
    let (boards_a, _) = station_flows(&trips, a.id, 15);
    let picks_b = bike_pickups_near(&trips, b.cell, 1, 15);
    println!(
        "\nresidential station {} → CBD station {} bike demand:",
        a.name, b.name
    );
    for lag in 0..6 {
        let bar_len = (lagged_correlation(&boards_a, &picks_b, lag).max(0.0) * 40.0) as usize;
        println!(
            "  lag {:>3} min  corr {:+.3}  {}",
            lag * 15,
            lagged_correlation(&boards_a, &picks_b, lag),
            "#".repeat(bar_len)
        );
    }

    // Self-supervised transfer-time estimation (the paper's future work #2):
    // match each bike pick-up near a station to its closest preceding
    // subway alighting.
    let estimates = estimate_transfer_times(&trips, 1, 20.0);
    println!("\nestimated subway→bike transfer times (self-supervised matching):");
    let mut sorted = estimates.clone();
    sorted.sort_by(|a, b| b.samples.cmp(&a.samples));
    for e in sorted.iter().take(8) {
        println!(
            "  {:<10} mean {:>5.1} min  median {:>5.1} min  ({} matched transfers)",
            layout.stations[e.station].name, e.mean_minutes, e.median_minutes, e.samples
        );
    }
    if let Some(mean) = network_mean_transfer_minutes(&estimates) {
        println!("  network-wide mean: {mean:.1} min");
    }
}
