//! Bring your own data: run the BikeCAP pipeline on trip records loaded from
//! CSV files instead of the built-in simulator.
//!
//! Real bike-share/transit exports can be adapted to the two schemas in
//! `bikecap::sim::io` (they mirror the paper's Tables I and II). Here we
//! write a simulated city out to CSV to stand in for an external dataset,
//! then run the whole pipeline from the files alone.
//!
//! ```text
//! cargo run --release --example custom_data
//! ```

use bikecap::eval::{evaluate, build_model, ModelKind, RunnerConfig};
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    io::{trip_data_from_csv, write_bike_csv, write_subway_csv},
    layout::CityLayout,
    ForecastDataset,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand-in for an external dataset: simulate and export to CSV.
    let mut rng = StdRng::seed_from_u64(21);
    let mut config = SimConfig::paper_scale();
    config.days = 6;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config.clone(), layout.clone()).run(&mut rng);
    let dir = std::env::temp_dir().join("bikecap-custom-data");
    std::fs::create_dir_all(&dir)?;
    let subway_csv = dir.join("subway.csv");
    let bike_csv = dir.join("bike.csv");
    write_subway_csv(&trips.subway, &subway_csv)?;
    write_bike_csv(&trips.bike, &bike_csv)?;
    println!(
        "wrote {} subway and {} bike records to {}",
        trips.subway.len(),
        trips.bike.len(),
        dir.display()
    );
    drop(trips); // from here on, only the files matter

    // === The external-data path starts here ===
    // 1. Load the record streams (the layout/config describe the grid and
    //    station placement your records refer to).
    let loaded = trip_data_from_csv(&subway_csv, &bike_csv, layout, config)?;
    println!(
        "loaded {} subway trips and {} bike trips from CSV",
        loaded.subway_trips(),
        loaded.bike_trips()
    );

    // 2. Aggregate and window exactly as with simulated data.
    let series = DemandSeries::from_trips(&loaded, 15);
    let dataset = ForecastDataset::new(&series, 8, 3);

    // 3. Train any registered model through the shared harness.
    let runner = RunnerConfig::smoke();
    let mut model = build_model(ModelKind::XGBoost, &dataset, &runner, 1);
    let mut train_rng = StdRng::seed_from_u64(3);
    model.fit(&dataset, &mut train_rng);
    let metrics = evaluate(model.as_ref(), &dataset, Some(24));
    println!(
        "XGBoost on the CSV-loaded data: test MAE {:.3}, RMSE {:.3}",
        metrics.mae, metrics.rmse
    );

    std::fs::remove_dir_all(dir).ok();
    Ok(())
}
