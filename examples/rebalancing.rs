//! Forecast-driven bike rebalancing — the paper's motivating application.
//!
//! Rebalancing trucks need long lead times ("60 minutes" in the paper's
//! intro), so the dispatcher must know demand *multiple steps* ahead. This
//! example compares three dispatch policies over the test period:
//!
//! * **no rebalancing** — stations keep whatever bikes drifted there;
//! * **BikeCAP-planned** — trucks are dispatched one hour ahead using the
//!   model's 4-step forecast;
//! * **oracle** — the same planner fed the true future demand (upper bound).
//!
//! ```text
//! cargo run --release --example rebalancing
//! ```

use bikecap::model::{BikeCap, BikeCapConfig, TrainOptions};
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    layout::CityLayout,
    ForecastDataset, Split,
};
use bikecap::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many bikes each cell holds at the start of every planning round.
const INITIAL_STOCK: f32 = 6.0;
/// Trucks can move this many bikes per round, city-wide.
const TRUCK_CAPACITY: f32 = 150.0;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut config = SimConfig::paper_scale();
    config.days = 10;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    let series = DemandSeries::from_trips(&trips, 15);
    let dataset = ForecastDataset::new(&series, 8, 4);

    println!("training BikeCAP for the dispatcher (one-hour horizon)…");
    let mut model = BikeCap::new(
        BikeCapConfig::new(trips.layout.height, trips.layout.width)
            .history(8)
            .horizon(4),
        &mut rng,
    );
    let options = TrainOptions {
        epochs: 12,
        batch_size: 16,
        max_batches_per_epoch: Some(16),
        learning_rate: 3e-3,
        ..TrainOptions::default()
    };
    model.fit(&dataset, &options, &mut rng);

    // Planning rounds: every 4 slots of the test period.
    let anchors = dataset.anchors(Split::Test);
    let rounds: Vec<usize> = anchors.iter().copied().step_by(4).take(48).collect();

    let mut shortage_none = 0.0f32;
    let mut shortage_model = 0.0f32;
    let mut shortage_oracle = 0.0f32;
    for &anchor in &rounds {
        let batch = dataset.batch(&[anchor]);
        let truth = dataset.denormalize_target(&batch.target); // (1, 4, H, W)
        let forecast = dataset
            .denormalize_target(&model.predict(&batch.input))
            .maximum(&Tensor::scalar(0.0));

        // Demand over the next hour per cell.
        let truth_hour = truth.sum_axes(&[1], false); // (1, H, W)
        let forecast_hour = forecast.sum_axes(&[1], false);

        shortage_none += shortage_after_plan(&truth_hour, None);
        shortage_model += shortage_after_plan(&truth_hour, Some(&forecast_hour));
        shortage_oracle += shortage_after_plan(&truth_hour, Some(&truth_hour));
    }

    let per_round = rounds.len() as f32;
    println!("\nunmet demand (bikes/hour, lower is better), {} rounds:", rounds.len());
    println!("  no rebalancing:   {:>7.1}", shortage_none / per_round);
    println!("  BikeCAP-planned:  {:>7.1}", shortage_model / per_round);
    println!("  oracle-planned:   {:>7.1}", shortage_oracle / per_round);
    let saved = 100.0 * (1.0 - shortage_model / shortage_none);
    let ceiling = 100.0 * (1.0 - shortage_oracle / shortage_none);
    println!(
        "\nBikeCAP's forecasts recover {saved:.0}% of the shortage (oracle ceiling {ceiling:.0}%)"
    );
}

/// Applies the greedy dispatch plan and returns the total unmet demand.
///
/// Every cell starts at `INITIAL_STOCK`; a plan moves up to `TRUCK_CAPACITY`
/// bikes from the cells with the largest projected surplus to those with the
/// largest projected deficit (projection = the `planning` map; `None` means
/// no trucks move).
fn shortage_after_plan(true_demand: &Tensor, planning: Option<&Tensor>) -> f32 {
    let n = true_demand.len();
    let mut stock = vec![INITIAL_STOCK; n];
    if let Some(projected) = planning {
        // Projected imbalance per cell.
        let mut deficits: Vec<(usize, f32)> = Vec::new();
        let mut surpluses: Vec<(usize, f32)> = Vec::new();
        for (i, &d) in projected.as_slice().iter().enumerate() {
            let bal = INITIAL_STOCK - d;
            if bal < 0.0 {
                deficits.push((i, -bal));
            } else if bal > 0.0 {
                surpluses.push((i, bal));
            }
        }
        deficits.sort_by(|a, b| b.1.total_cmp(&a.1));
        surpluses.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut budget = TRUCK_CAPACITY;
        let mut si = 0;
        for (cell, mut need) in deficits {
            while need > 0.0 && budget > 0.0 && si < surpluses.len() {
                let (src, avail) = &mut surpluses[si];
                let mv = need.min(*avail).min(budget);
                stock[cell] += mv;
                stock[*src] -= mv;
                need -= mv;
                *avail -= mv;
                budget -= mv;
                if *avail <= 0.0 {
                    si += 1;
                }
            }
        }
    }
    // Unmet demand with the final stocks against the *true* demand.
    true_demand
        .as_slice()
        .iter()
        .zip(&stock)
        .map(|(&d, &s)| (d - s).max(0.0))
        .sum()
}
