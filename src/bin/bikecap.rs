//! `bikecap` — a small CLI over the library: simulate a city, train the
//! model, forecast demand, and serve predictions over HTTP.
//!
//! ```text
//! bikecap simulate --days 10 --seed 1 --out-dir ./data
//! bikecap train    --days 10 --seed 1 --horizon 4 --epochs 20 --weights model.txt
//! bikecap forecast --days 10 --seed 1 --horizon 4 --weights model.txt
//! bikecap train    --days 10 --epochs 20 --save model.ckpt
//! bikecap serve    --checkpoint model.ckpt --addr 127.0.0.1:7878
//! ```
//!
//! `simulate` writes the record streams as CSV (Tables I/II schema); `train`
//! fits BikeCAP on the simulated month and saves weights; `forecast` reloads
//! them and prints the multi-step demand forecast for the last test window.
//!
//! The train → serve round trip: `train --save` writes a versioned checkpoint
//! whose header records the architecture (config hash, grid, history,
//! horizon); `serve --checkpoint` reads that header back, rebuilds the model,
//! and answers `POST /predict` with dynamically micro-batched forward passes.
//! A checkpoint from a different architecture is refused with a typed config
//! mismatch instead of garbage predictions.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use bikecap::eval::{evaluate, BikeCapForecaster};
use bikecap::faults::{self, FaultPlan};
use bikecap::model::{BikeCap, BikeCapConfig, ResilientOptions, TrainOptions};
use bikecap::nn::serialize::{
    clean_stale_tmp, load_params, read_meta, read_params, save_params, save_quant_params,
};
use bikecap::quant::{quantize_pairs, QuantEntry, QuantFormat};
use bikecap::serve::{
    compute_threads_per_worker, signal::install_shutdown_flag, BatchConfig, ModelRegistry,
    ServeConfig, Server, DEFAULT_MODEL,
};
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator, TripData},
    io::{write_bike_csv, write_subway_csv},
    layout::CityLayout,
    ForecastDataset, Split,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn usage() -> &'static str {
    "usage: bikecap <simulate|train|forecast|serve|quantize|profile|live|check-config> [--days N] [--seed N] \
     [--horizon N] [--epochs N] [--weights FILE] [--out-dir DIR] [--save FILE] \
     [--resume] [--autosave-every N] \
     [--checkpoint FILE] [--addr HOST:PORT] [--workers N] [--max-batch N] [--max-wait-ms N] \
     [--queue-cap N] [--bind-retries N] [--faults SPEC] [--fault-seed N] \
     [--steps N] [--trace FILE] [--threads N] \
     [--in FILE] [--out FILE] [--format q8_0|f16]\n\
     round trip: `bikecap train --save model.ckpt && bikecap serve --checkpoint model.ckpt`\n\
     quantize a trained checkpoint: `bikecap quantize --in model.ckpt --out model.q8` \
     (then `bikecap serve --checkpoint model.q8`; gate accuracy first with \
     `bikecap-check quant-eval`)\n\
     resume an interrupted run: `bikecap train --save model.ckpt --resume`\n\
     profile N train steps: `bikecap profile --steps 10 --trace trace.json` (open the \
     trace in chrome://tracing or Perfetto)\n\
     `--trace FILE` on train/serve records spans too: `.jsonl` streams events, any \
     other extension writes a Chrome trace on exit\n\
     `--faults 'io.checkpoint.write=p:0.3'` arms seeded failpoints (needs the \
     `faultline` build feature)\n\
     `--threads N` sizes the bikecap-rt compute pool (0 = auto; overrides \
     BIKECAP_THREADS); under `serve` it is the TOTAL budget split across the \
     --workers batch workers\n\
     `bikecap live --days 4 --epochs 3` runs the live-city adaptation demo: \
     train an incumbent, stream a weather-shocked city through the drift \
     detector, fine-tune and hot-swap on confirmed drift\n\
     `bikecap check-config --help` lists the shape-checker's own flags"
}

struct Args {
    days: u32,
    seed: u64,
    horizon: usize,
    epochs: usize,
    weights: PathBuf,
    out_dir: PathBuf,
    save: Option<PathBuf>,
    resume: bool,
    autosave_every: usize,
    checkpoint: Option<PathBuf>,
    addr: String,
    workers: usize,
    max_batch: usize,
    max_wait_ms: u64,
    queue_cap: usize,
    bind_retries: u32,
    faults: Option<String>,
    fault_seed: u64,
    steps: usize,
    trace: Option<PathBuf>,
    threads: Option<usize>,
    input: Option<PathBuf>,
    out: Option<PathBuf>,
    format: String,
}

/// Flags that are plain switches: present means true, they never consume the
/// next argument.
const BOOL_FLAGS: &[&str] = &["resume"];

fn parse_flags(rest: &[String]) -> Result<Args, String> {
    let mut map: HashMap<String, String> = HashMap::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("unexpected argument '{flag}'"));
        };
        if BOOL_FLAGS.contains(&name) {
            map.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} requires a value"))?;
        map.insert(name.to_string(), value.clone());
    }
    let get = |k: &str, d: &str| map.get(k).cloned().unwrap_or_else(|| d.to_string());
    Ok(Args {
        days: get("days", "10").parse().map_err(|_| "invalid --days".to_string())?,
        seed: get("seed", "1").parse().map_err(|_| "invalid --seed".to_string())?,
        horizon: get("horizon", "4").parse().map_err(|_| "invalid --horizon".to_string())?,
        epochs: get("epochs", "15").parse().map_err(|_| "invalid --epochs".to_string())?,
        weights: PathBuf::from(get("weights", "bikecap-weights.txt")),
        out_dir: PathBuf::from(get("out-dir", ".")),
        save: map.get("save").map(PathBuf::from),
        resume: map.contains_key("resume"),
        autosave_every: get("autosave-every", "1")
            .parse()
            .map_err(|_| "invalid --autosave-every".to_string())?,
        checkpoint: map.get("checkpoint").map(PathBuf::from),
        addr: get("addr", "127.0.0.1:7878"),
        workers: get("workers", "2").parse().map_err(|_| "invalid --workers".to_string())?,
        max_batch: get("max-batch", "16").parse().map_err(|_| "invalid --max-batch".to_string())?,
        max_wait_ms: get("max-wait-ms", "5").parse().map_err(|_| "invalid --max-wait-ms".to_string())?,
        queue_cap: get("queue-cap", "256").parse().map_err(|_| "invalid --queue-cap".to_string())?,
        bind_retries: get("bind-retries", "3")
            .parse()
            .map_err(|_| "invalid --bind-retries".to_string())?,
        faults: map.get("faults").cloned(),
        fault_seed: get("fault-seed", "0")
            .parse()
            .map_err(|_| "invalid --fault-seed".to_string())?,
        steps: get("steps", "10").parse().map_err(|_| "invalid --steps".to_string())?,
        trace: map.get("trace").map(PathBuf::from),
        threads: map
            .get("threads")
            .map(|v| v.parse().map_err(|_| "invalid --threads".to_string()))
            .transpose()?,
        input: map.get("in").map(PathBuf::from),
        out: map.get("out").map(PathBuf::from),
        format: get("format", "q8_0"),
    })
}

/// Deletes torn `*.tmp` siblings a killed process left next to `path`, so a
/// crashed save never masquerades as a checkpoint. Best-effort: an unreadable
/// directory only means nothing to clean.
fn clean_checkpoint_dir(path: &std::path::Path) {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    if let Ok(removed) = clean_stale_tmp(&dir) {
        for tmp in removed {
            eprintln!("removed stale checkpoint temp file {}", tmp.display());
        }
    }
}

fn simulate_city(args: &Args) -> TripData {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut config = SimConfig::paper_scale();
    config.days = args.days;
    let layout = CityLayout::generate(&config, &mut rng);
    Simulator::new(config, layout).run(&mut rng)
}

fn build_dataset(trips: &TripData, horizon: usize) -> ForecastDataset {
    let series = DemandSeries::from_trips(trips, 15);
    ForecastDataset::new(&series, 8, horizon)
}

fn model_for(trips: &TripData, horizon: usize, seed: u64) -> BikeCap {
    let mut rng = StdRng::seed_from_u64(seed);
    BikeCap::new(
        BikeCapConfig::new(trips.layout.height, trips.layout.width)
            .history(8)
            .horizon(horizon),
        &mut rng,
    )
}

/// What `finish_trace` still owes the user once the traced run ends: for
/// Chrome-trace mode the buffered events and their destination, for JSONL
/// mode nothing (events already streamed to disk).
enum TraceMode {
    Chrome(Arc<bikecap::obs::MemorySink>, PathBuf),
    Jsonl(PathBuf),
}

/// Installs the span sink `--trace FILE` asked for: `.jsonl` streams events
/// as they happen; any other extension buffers in memory and writes a
/// Chrome `trace_event` file when the run ends.
fn start_trace(path: &std::path::Path) -> Result<TraceMode, String> {
    if path.extension().is_some_and(|e| e == "jsonl") {
        let sink = bikecap::obs::JsonlSink::create(path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        bikecap::obs::install(Arc::new(sink));
        Ok(TraceMode::Jsonl(path.to_path_buf()))
    } else {
        let sink = Arc::new(bikecap::obs::MemorySink::new(1 << 20));
        bikecap::obs::install(sink.clone());
        Ok(TraceMode::Chrome(sink, path.to_path_buf()))
    }
}

/// Flushes/exports the trace started by [`start_trace`] and reports where
/// it went. Returns the captured events for further reporting (Chrome mode
/// only; JSONL mode returns an empty vec — the file already has them).
fn finish_trace(mode: TraceMode) -> Result<Vec<bikecap::obs::Event>, String> {
    bikecap::obs::clear();
    match mode {
        TraceMode::Jsonl(path) => {
            println!("trace: events streamed to {} (JSONL)", path.display());
            Ok(Vec::new())
        }
        TraceMode::Chrome(sink, path) => {
            let events = sink.snapshot();
            bikecap::obs::chrome::write_chrome_trace(&path, &events)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!(
                "trace: {} events -> {} (open in chrome://tracing or Perfetto)",
                events.len(),
                path.display()
            );
            Ok(events)
        }
    }
}

/// `bikecap profile`: run `--steps` forward/backward training steps on a
/// simulated dataset with span recording on, write a Chrome trace, and
/// print the per-layer cost table.
fn cmd_profile(args: &Args) -> Result<(), String> {
    let trace_path = args
        .trace
        .clone()
        .unwrap_or_else(|| PathBuf::from("bikecap-trace.json"));
    let sink = Arc::new(bikecap::obs::MemorySink::new(1 << 20));
    bikecap::obs::install(sink.clone());

    let trips = simulate_city(args);
    let dataset = build_dataset(&trips, args.horizon);
    let mut model = model_for(&trips, args.horizon, args.seed);
    println!(
        "profiling {} forward/backward steps on a {}x{} grid ({} parameters)…",
        args.steps,
        trips.layout.height,
        trips.layout.width,
        model.num_parameters()
    );
    let options = TrainOptions {
        epochs: 1,
        batch_size: 4,
        max_batches_per_epoch: Some(args.steps.max(1)),
        learning_rate: 3e-3,
        ..TrainOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xbeef);
    let report = model.fit(&dataset, &options, &mut rng);

    let events = finish_trace(TraceMode::Chrome(sink, trace_path))?;
    let rows = bikecap::obs::cost_table(&events);
    print!("{}", bikecap::obs::render_cost_table(&rows));
    let roofline = bikecap::obs::Roofline::from_env();
    let perf = bikecap::obs::roofline_table(&events, &roofline);
    print!("{}", bikecap::obs::render_roofline_table(&perf, &roofline));
    println!(
        "profiled {} step(s) in {:.2}s, final loss {:.4}",
        args.steps,
        report.seconds,
        report.final_loss().unwrap_or(f32::NAN)
    );
    Ok(())
}

/// `bikecap quantize`: rewrite a trained f32 checkpoint as a format-v4 file
/// with conv/matmul weights in Q8_0 blocks (or f16), leaving biases and
/// other quantization-sensitive tensors at full precision. The output is a
/// drop-in `--checkpoint` for `serve`/`forecast`; run `bikecap-check
/// quant-eval` to confirm the accuracy gate before deploying it.
fn cmd_quantize(args: &Args) -> Result<(), String> {
    let input = args
        .input
        .as_deref()
        .ok_or("quantize requires --in FILE (a trained checkpoint)")?;
    let out = args
        .out
        .as_deref()
        .ok_or("quantize requires --out FILE (the quantized checkpoint)")?;
    let format = QuantFormat::parse(&args.format)
        .ok_or_else(|| format!("invalid --format '{}' (expected q8_0 or f16)", args.format))?;
    let (meta, pairs) = read_params(input).map_err(|e| format!("{}: {e}", input.display()))?;
    let entries = quantize_pairs(&pairs, format);
    let (mut q8, mut f16, mut f32_kept) = (0usize, 0usize, 0usize);
    for (_, entry) in &entries {
        match entry {
            QuantEntry::Q8(_) => q8 += 1,
            QuantEntry::F16(_) => f16 += 1,
            QuantEntry::F32(_) => f32_kept += 1,
        }
    }
    save_quant_params(&entries, meta.as_ref(), out)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    let size = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    let (in_bytes, out_bytes) = (size(input), size(out));
    println!(
        "quantized {} -> {} ({}): {} q8_0 + {} f16 + {} f32 tensors, {} -> {} bytes ({:.0}%)",
        input.display(),
        out.display(),
        format.name(),
        q8,
        f16,
        f32_kept,
        in_bytes,
        out_bytes,
        100.0 * out_bytes as f64 / in_bytes.max(1) as f64
    );
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let trips = simulate_city(args);
    std::fs::create_dir_all(&args.out_dir).map_err(|e| e.to_string())?;
    let subway = args.out_dir.join("subway.csv");
    let bike = args.out_dir.join("bike.csv");
    write_subway_csv(&trips.subway, &subway).map_err(|e| e.to_string())?;
    write_bike_csv(&trips.bike, &bike).map_err(|e| e.to_string())?;
    println!(
        "simulated {} days: {} subway trips -> {}, {} bike trips -> {}",
        args.days,
        trips.subway_trips(),
        subway.display(),
        trips.bike_trips(),
        bike.display()
    );
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let trace = args.trace.as_deref().map(start_trace).transpose()?;
    let trips = simulate_city(args);
    let dataset = build_dataset(&trips, args.horizon);
    let mut model = model_for(&trips, args.horizon, args.seed);
    println!(
        "training BikeCAP ({} parameters) for {} epochs…",
        model.num_parameters(),
        args.epochs
    );
    let options = TrainOptions {
        epochs: args.epochs,
        batch_size: 16,
        max_batches_per_epoch: Some(24),
        learning_rate: 3e-3,
        ..TrainOptions::default()
    };
    let report = if args.save.is_some() || args.resume {
        // Fault-tolerant path: autosave after every Nth epoch, resume from
        // the last autosave, divergence guard with rollback.
        let checkpoint = args.save.clone().ok_or_else(|| {
            "--resume needs --save FILE (the checkpoint to resume from)".to_string()
        })?;
        clean_checkpoint_dir(&checkpoint);
        let resilient = ResilientOptions {
            train: options.clone(),
            seed: args.seed ^ 0xbeef,
            checkpoint: Some(checkpoint),
            autosave_every: args.autosave_every.max(1),
            resume: args.resume,
            ..ResilientOptions::default()
        };
        let run = model.fit_resilient(&dataset, &resilient).map_err(|e| e.to_string())?;
        if let Some(epoch) = run.resumed_at {
            println!("resumed from epoch {epoch}");
        }
        if run.rollbacks > 0 {
            println!(
                "divergence guard rolled back {} epoch(s); final learning rate {:.2e}",
                run.rollbacks, run.final_lr
            );
        }
        run.report
    } else {
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xbeef);
        model.fit(&dataset, &options, &mut rng)
    };
    println!(
        "trained in {:.1}s, loss {:.4} -> {:.4}",
        report.seconds,
        report.epoch_losses.first().copied().unwrap_or(f32::NAN),
        report.final_loss().unwrap_or(f32::NAN)
    );
    let fc = BikeCapForecaster::new(model, options);
    let m = evaluate(&fc, &dataset, Some(48));
    println!("test MAE {:.3}, RMSE {:.3} (bikes per cell per 15 min)", m.mae, m.rmse);
    save_params(fc.model().store(), &args.weights).map_err(|e| e.to_string())?;
    println!("weights saved to {}", args.weights.display());
    if let Some(path) = &args.save {
        fc.model().save_checkpoint(path).map_err(|e| e.to_string())?;
        println!(
            "checkpoint (weights + config metadata) saved to {0} — serve it with \
             `bikecap serve --checkpoint {0}`",
            path.display()
        );
    }
    if let Some(mode) = trace {
        finish_trace(mode)?;
    }
    Ok(())
}

fn cmd_forecast(args: &Args) -> Result<(), String> {
    let trips = simulate_city(args);
    let dataset = build_dataset(&trips, args.horizon);
    let mut model = model_for(&trips, args.horizon, args.seed);
    load_params(model.store_mut(), &args.weights).map_err(|e| e.to_string())?;

    let anchors = dataset.anchors(Split::Test);
    let anchor = *anchors.last().ok_or("no test windows")?;
    let batch = dataset.batch(&[anchor]);
    let forecast = dataset.denormalize_target(&model.predict(&batch.input));
    let truth = dataset.denormalize_target(&batch.target);
    println!(
        "forecast from the last test window ({}x{} grid):",
        trips.layout.height, trips.layout.width
    );
    for step in 0..args.horizon {
        let f: f32 = forecast.narrow(1, step, 1).sum();
        let t: f32 = truth.narrow(1, step, 1).sum();
        println!("  +{:>3} min: {:>7.1} bikes forecast (actual {:>7.1})", (step + 1) * 15, f, t);
    }
    // The busiest forecast cell at the last step.
    let last = forecast.narrow(1, args.horizon - 1, 1);
    let (mut best, mut best_val) = ((0, 0), f32::NEG_INFINITY);
    for r in 0..trips.layout.height {
        for c in 0..trips.layout.width {
            let v = last.get(&[0, 0, r, c]);
            if v > best_val {
                best_val = v;
                best = (r, c);
            }
        }
    }
    println!(
        "hot spot at +{} min: cell ({}, {}) with {:.1} bikes",
        args.horizon * 15,
        best.0,
        best.1,
        best_val
    );
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let trace = args.trace.as_deref().map(start_trace).transpose()?;
    let path = args.checkpoint.clone().ok_or_else(|| {
        format!(
            "serve requires --checkpoint FILE (write one with `bikecap train --save FILE`)\n{}",
            usage()
        )
    })?;
    // A crash during a previous save may have left torn temp files next to
    // the checkpoint; remove them before trusting the directory.
    clean_checkpoint_dir(&path);
    // The v2 checkpoint header records the architecture, so the server can
    // rebuild the exact model the checkpoint was trained with.
    let meta = read_meta(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?
        .ok_or_else(|| {
            format!(
                "{} has no config metadata (legacy v1 file?) — re-save it with \
                 `bikecap train --save`",
                path.display()
            )
        })?;
    let config = BikeCapConfig::new(meta.grid.0, meta.grid.1)
        .history(meta.history)
        .horizon(meta.horizon);
    let registry = Arc::new(ModelRegistry::new());
    registry
        .load_checkpoint(DEFAULT_MODEL, config, &path)
        .map_err(|e| e.to_string())?;

    // One knob for the whole process: `--threads` (already applied to the
    // global pool in `main`) is the TOTAL compute budget, split evenly across
    // the batch workers so `workers × compute_threads` never oversubscribes.
    let total_threads = bikecap::rt::threads().max(1);
    let serve_config = ServeConfig {
        addr: args.addr.clone(),
        bind_retries: args.bind_retries,
        batch: BatchConfig {
            queue_cap: args.queue_cap,
            max_batch: args.max_batch,
            max_wait: Duration::from_millis(args.max_wait_ms),
            workers: args.workers,
            total_threads: Some(total_threads),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(serve_config, registry).map_err(|e| e.to_string())?;
    println!(
        "serving {} on http://{} ({} workers, batches of up to {} within {}ms)",
        path.display(),
        server.local_addr(),
        args.workers,
        args.max_batch,
        args.max_wait_ms
    );
    println!(
        "  thread budget: {} total = {} workers × {} compute threads each",
        total_threads,
        args.workers,
        compute_threads_per_worker(total_threads, args.workers)
    );
    println!(
        "  POST /predict  body {{\"input\":{{\"shape\":[4,{},{},{}],\"data\":[…]}}}}",
        meta.history, meta.grid.0, meta.grid.1
    );
    println!("  GET  /healthz | GET /metrics | POST /admin/reload");
    println!("ctrl-c or SIGTERM drains in-flight batches and exits");
    server.run_until(install_shutdown_flag());
    println!("drained and stopped");
    if let Some(mode) = trace {
        finish_trace(mode)?;
    }
    Ok(())
}

/// `bikecap live`: the live-city adaptation demo. Trains an incumbent on a
/// quiet city, registers it in a serving slot, then replays a record stream
/// whose second half carries a weather shock. The live loop aggregates the
/// stream into a rolling window, watches prediction error plus routing
/// telemetry, and on confirmed drift fine-tunes, shadow-evaluates and — if
/// the candidate wins — hot-swaps through the registry's reload path.
fn cmd_live(args: &Args) -> Result<(), String> {
    use bikecap::live::{AdaptOutcome, LiveConfig, LiveLoop, RecordStream};
    use bikecap::sim::scenario::{Scenario, WeatherShock};

    let history = 8usize;
    // Phase 1: baseline month, incumbent training.
    let trips = simulate_city(args);
    let dataset = build_dataset(&trips, args.horizon);
    let mut model = model_for(&trips, args.horizon, args.seed);
    println!(
        "training the incumbent ({} parameters) for {} epochs…",
        model.num_parameters(),
        args.epochs
    );
    let options = TrainOptions {
        epochs: args.epochs,
        batch_size: 16,
        max_batches_per_epoch: Some(24),
        learning_rate: 3e-3,
        ..TrainOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xbeef);
    let report = model.fit(&dataset, &options, &mut rng);
    println!(
        "incumbent ready: loss {:.4} -> {:.4}",
        report.epoch_losses.first().copied().unwrap_or(f32::NAN),
        report.final_loss().unwrap_or(f32::NAN)
    );

    // Phase 2: register it as the serving model.
    let registry = ModelRegistry::new();
    let entry = registry.insert(DEFAULT_MODEL, model);
    let metrics = Arc::new(bikecap::serve::Metrics::new());

    // Phase 3: a fresh live stream from the same city config whose final
    // day carries a weather shock — the regime shift to detect and absorb.
    // The first day feeds the detector's diurnal baseline, so the shock
    // must start after it.
    let mut live_sim = SimConfig::paper_scale();
    live_sim.days = args.days.max(3);
    let shock_start = f64::from(live_sim.days - 1) * 1440.0;
    live_sim.scenario = Scenario {
        weather_shock: Some(WeatherShock {
            start_min: shock_start,
            end_min: f64::from(live_sim.total_minutes()),
            demand_factor: 2.5,
        }),
        ..Scenario::none()
    };
    let mut live_rng = StdRng::seed_from_u64(args.seed.wrapping_add(101));
    let live_layout = CityLayout::generate(&live_sim, &mut live_rng);
    let live_trips = Simulator::new(live_sim.clone(), live_layout).run(&mut live_rng);
    println!(
        "live stream: {} days, weather shock (2.5x) from minute {:.0}",
        live_sim.days, shock_start
    );

    let work_dir = args.out_dir.join("live-work");
    let live_config = LiveConfig::new(
        history,
        args.horizon,
        dataset.normalizer().clone(),
        work_dir,
    );
    let mut live = LiveLoop::new(
        Arc::clone(&entry),
        live_config,
        Some(Arc::clone(&metrics)),
        None,
    )
    .map_err(|e| e.to_string())?;
    let report = live
        .run(
            RecordStream::new(&live_trips),
            f64::from(live_sim.total_minutes()),
        )
        .map_err(|e| e.to_string())?;
    bikecap::obs::clear();

    println!(
        "ingested {} records ({} refused, {} slots sealed)",
        report.records, report.window_refusals, report.slots
    );
    for (slot, state) in &report.transitions {
        println!("  slot {slot:>4}: -> {}", state.as_str());
    }
    for outcome in &report.outcomes {
        match outcome {
            AdaptOutcome::Swapped {
                slot,
                incumbent_mae,
                candidate_mae,
            } => println!(
                "  slot {slot:>4}: HOT-SWAP (val MAE {candidate_mae:.4} beat \
                 {incumbent_mae:.4})"
            ),
            AdaptOutcome::Refused {
                slot,
                incumbent_mae,
                candidate_mae,
            } => println!(
                "  slot {slot:>4}: refused (candidate {candidate_mae:.4} vs incumbent \
                 {incumbent_mae:.4})"
            ),
            AdaptOutcome::RolledBack { slot, reason } => {
                println!("  slot {slot:>4}: rolled back ({reason})")
            }
        }
    }
    println!(
        "swaps {}, rollbacks {}, refusals {}; serving model version {} (report \
         fingerprint {:016x})",
        report.swaps,
        report.rollbacks,
        report.refusals,
        entry.swap_count(),
        report.fingerprint()
    );
    Ok(())
}

/// Static shape-contract check of one configuration (`bikecap check-config
/// --grid 8x8 --horizon 6 …`); shares its flag grammar with `bikecap-check`.
fn cmd_check_config(rest: &[String]) -> u8 {
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        println!("bikecap check-config FLAGS:\n{}", bikecap::check::CHECK_CONFIG_FLAGS);
        return 0;
    }
    let (config, overrides) = match bikecap::check::config_from_flags(rest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("check-config: {e}\n\nFLAGS:\n{}", bikecap::check::CHECK_CONFIG_FLAGS);
            return 2;
        }
    };
    match bikecap::model::check_config_with(&config, &overrides) {
        Ok(plan) => {
            println!("check-config: input {}", plan.input);
            for layer in &plan.layers {
                println!("  {:24} -> {}", layer.layer, layer.output);
            }
            println!("check-config: ok");
            0
        }
        Err(e) => {
            eprintln!("check-config: {e}");
            1
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // check-config has its own flag grammar (shared with bikecap-check); it
    // must not go through the train/serve flag parser.
    if cmd == "check-config" {
        return ExitCode::from(cmd_check_config(&argv[1..]));
    }
    let args = match parse_flags(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if let Some(n) = args.threads {
        // 0 = auto (BIKECAP_THREADS, else available parallelism). Applies to
        // every command; `serve` additionally treats it as the total budget
        // and re-splits it across batch workers.
        bikecap::rt::set_threads(n);
    }
    if let Some(spec) = &args.faults {
        let plan = match FaultPlan::parse(spec, args.fault_seed) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("invalid --faults spec: {e}");
                return ExitCode::FAILURE;
            }
        };
        if faults::ENABLED {
            eprintln!(
                "failpoints armed: {spec} (seed {}) — expect injected failures",
                args.fault_seed
            );
            faults::install(plan);
        } else {
            eprintln!(
                "warning: --faults ignored; this binary was built without the \
                 `faultline` feature (rebuild with `--features faultline`)"
            );
        }
    }
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&args),
        "train" => cmd_train(&args),
        "forecast" => cmd_forecast(&args),
        "serve" => cmd_serve(&args),
        "profile" => cmd_profile(&args),
        "quantize" => cmd_quantize(&args),
        "live" => cmd_live(&args),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
