//! # BikeCAP — facade crate
//!
//! A Rust reproduction of *"BikeCAP: Deep Spatial-temporal Capsule Network for
//! Multi-step Bike Demand Prediction"* (ICDCS 2022). This crate re-exports the
//! whole workspace so applications can depend on a single crate:
//!
//! * [`tensor`] — dense f32 N-d tensors and convolution kernels.
//! * [`autograd`] — reverse-mode automatic differentiation.
//! * [`nn`] — layers, optimizers, parameter stores.
//! * [`sim`] — the synthetic Shenzhen-style city simulator (subway + bike trips).
//! * [`model`] — the BikeCAP capsule network and its ablation variants.
//! * [`baselines`] — the seven comparison forecasters from the paper.
//! * [`eval`] — metrics and the repeated-seed experiment harness.
//! * [`serve`] — batched multi-threaded inference serving (registry,
//!   micro-batching queue, std-only HTTP front end).
//! * [`live`] — the live-city adaptation loop: streaming ingestion into a
//!   rolling demand window, drift detection over prediction error and
//!   routing telemetry, and self-healing redeployment (fine-tune →
//!   shadow-eval → hot-swap, with rollback on any failure).
//! * [`faults`] — deterministic seeded failpoints; armed only with the
//!   `faultline` feature, compiled to no-ops otherwise.
//! * [`rt`] — deterministic parallel runtime: the chunk-stealing thread
//!   pool behind the conv/routing hot paths (`BIKECAP_THREADS`,
//!   `--threads`), bitwise-identical at every thread count.
//! * [`quant`] — post-training quantization: ggml-style Q8_0 block weights
//!   and software f16, quantized matmul/conv3d kernel bodies dispatched
//!   identically by the eager tape and the compiled executor, and the
//!   checkpoint dtype policy behind `bikecap quantize`.
//! * [`verify`] — static verifier for compiled executor plans: proves slab
//!   disjointness, refcount balance, bounds, and schedule validity per
//!   plan (`BIKECAP_VERIFY=strict|warn|off`), plus the mutation harness
//!   that keeps the verifier itself honest.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.

pub use bikecap_autograd as autograd;
pub use bikecap_baselines as baselines;
pub use bikecap_check as check;
pub use bikecap_city_sim as sim;
pub use bikecap_core as model;
pub use bikecap_eval as eval;
pub use bikecap_faults as faults;
pub use bikecap_ir as ir;
pub use bikecap_live as live;
pub use bikecap_nn as nn;
pub use bikecap_obs as obs;
pub use bikecap_quant as quant;
pub use bikecap_rt as rt;
pub use bikecap_serve as serve;
pub use bikecap_tensor as tensor;
pub use bikecap_verify as verify;
