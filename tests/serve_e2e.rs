//! End-to-end tests for the serving subsystem: a real server on an ephemeral
//! port, concurrent HTTP clients, checkpoint round trips, and the CLI binary
//! under SIGTERM.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use bikecap::model::{BikeCap, BikeCapConfig};
use bikecap::serve::http::client_request;
use bikecap::serve::{BatchConfig, Json, ModelRegistry, ServeConfig, Server, DEFAULT_MODEL};

fn tiny_config() -> BikeCapConfig {
    BikeCapConfig::new(4, 4)
        .history(4)
        .horizon(2)
        .pyramid_size(2)
        .capsule_dim(2)
        .out_capsule_dim(2)
        .decoder_channels(2)
}

/// A deterministic but request-specific input window payload.
fn predict_body(variant: usize) -> String {
    let len = 4 * 4 * 4 * 4;
    let data: Vec<f32> = (0..len)
        .map(|i| ((i * 31 + variant * 97) % 101) as f32 / 101.0)
        .collect();
    Json::obj([(
        "input",
        Json::obj([
            ("shape", Json::from_usizes(&[4, 4, 4, 4])),
            ("data", Json::from_f32s(&data)),
        ]),
    )])
    .to_string()
}

fn data_of(body: &str) -> Vec<f64> {
    Json::parse(body)
        .unwrap()
        .get("data")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect()
}

fn checkpoint_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bikecap-e2e-{tag}-{}.ckpt", std::process::id()))
}

/// Starts a server whose default model comes from a saved checkpoint —
/// exercising the save → load → serve round trip on every test.
fn start_server(tag: &str, batch: BatchConfig) -> (Server, std::path::PathBuf) {
    let ckpt = checkpoint_path(tag);
    BikeCap::seeded(tiny_config(), 9)
        .save_checkpoint(&ckpt)
        .unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry
        .load_checkpoint(DEFAULT_MODEL, tiny_config(), &ckpt)
        .unwrap();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        batch,
        ..ServeConfig::default()
    };
    (Server::start(config, registry).unwrap(), ckpt)
}

#[test]
fn batched_responses_match_single_requests_bit_for_bit() {
    let (server, ckpt) = start_server(
        "batch",
        BatchConfig {
            max_batch: 8,
            // A generous window so all concurrent requests share one forward
            // pass.
            max_wait: Duration::from_millis(250),
            workers: 1,
            ..BatchConfig::default()
        },
    );
    let addr = server.local_addr();

    // Fire 6 distinct requests at the same instant.
    let barrier = Arc::new(Barrier::new(6));
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                client_request(
                    addr,
                    "POST",
                    "/predict",
                    Some(&predict_body(i)),
                    Duration::from_secs(30),
                )
                .unwrap()
            })
        })
        .collect();
    let batched: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Re-ask for each input one at a time: same bytes must come back.
    let mut max_batch_size = 0;
    for (i, (status, body)) in batched.iter().enumerate() {
        assert_eq!(*status, 200, "request {i}: {body}");
        let doc = Json::parse(body).unwrap();
        max_batch_size =
            max_batch_size.max(doc.get("batch_size").and_then(Json::as_usize).unwrap());
        let (solo_status, solo_body) = client_request(
            addr,
            "POST",
            "/predict",
            Some(&predict_body(i)),
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(solo_status, 200, "{solo_body}");
        assert_eq!(
            data_of(body),
            data_of(&solo_body),
            "request {i}: batched output must equal the single-request output bit for bit"
        );
    }
    assert!(
        max_batch_size >= 2,
        "concurrent requests should have shared a forward pass (max batch {max_batch_size})"
    );

    // Metrics agree with what just happened.
    let (status, prom) = client_request(addr, "GET", "/metrics", None, Duration::from_secs(5))
        .unwrap();
    assert_eq!(status, 200);
    assert!(prom.contains("bikecap_requests_total 12"), "{prom}");
    assert!(
        prom.contains("# TYPE bikecap_stage_duration_us histogram"),
        "{prom}"
    );
    let (status, body) = client_request(addr, "GET", "/metrics.json", None, Duration::from_secs(5))
        .unwrap();
    assert_eq!(status, 200);
    let m = Json::parse(&body).unwrap();
    assert_eq!(m.get("requests_total").and_then(Json::as_usize), Some(12));
    assert_eq!(m.get("responses_ok").and_then(Json::as_usize), Some(12));
    assert_eq!(m.get("queue_depth").and_then(Json::as_usize), Some(0));
    assert!(m.get("latency_p50_us").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(m.get("latency_p99_us").and_then(Json::as_f64).unwrap() > 0.0);
    let hist = m.get("batch_size_histogram").and_then(Json::as_arr).unwrap();
    let multi: usize = hist
        .iter()
        .filter(|b| b.get("le").and_then(Json::as_usize).is_none_or(|le| le >= 2))
        .map(|b| b.get("count").and_then(Json::as_usize).unwrap())
        .sum();
    assert!(multi >= 1, "histogram should record a multi-request batch");

    server.shutdown();
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn saturated_queue_answers_503_and_accepted_requests_still_complete() {
    let (server, ckpt) = start_server(
        "overload",
        BatchConfig {
            queue_cap: 2,
            max_batch: 1,
            max_wait: Duration::ZERO,
            workers: 1,
            // Hold the single worker long enough that the bounded queue
            // demonstrably fills while the clients fire.
            worker_delay: Duration::from_millis(600),
            ..BatchConfig::default()
        },
    );
    let addr = server.local_addr();

    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                client_request(
                    addr,
                    "POST",
                    "/predict",
                    Some(&predict_body(i)),
                    Duration::from_secs(30),
                )
                .unwrap()
            })
        })
        .collect();
    let results: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let ok = results.iter().filter(|(s, _)| *s == 200).count();
    let shed = results.iter().filter(|(s, _)| *s == 503).count();
    assert_eq!(ok + shed, clients, "only 200 or 503 expected: {results:?}");
    assert!(ok >= 1, "accepted requests must still be answered");
    assert!(shed >= 1, "a saturated bounded queue must shed load with 503");
    for (status, body) in &results {
        if *status == 503 {
            let doc = Json::parse(body).unwrap();
            assert!(doc.get("error").is_some(), "503 carries an error body");
        }
    }

    let metrics = server.metrics();
    use std::sync::atomic::Ordering;
    assert_eq!(
        metrics.rejected_total.load(Ordering::Relaxed) as usize,
        shed
    );
    assert_eq!(metrics.responses_ok.load(Ordering::Relaxed) as usize, ok);
    server.shutdown();
    std::fs::remove_file(ckpt).ok();
}

#[test]
fn shutdown_waits_for_accepted_work() {
    let (server, ckpt) = start_server(
        "drain",
        BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(50),
            workers: 1,
            worker_delay: Duration::from_millis(100),
            ..BatchConfig::default()
        },
    );
    let addr = server.local_addr();
    // A request in flight while shutdown begins still gets its answer.
    let client = std::thread::spawn(move || {
        client_request(
            addr,
            "POST",
            "/predict",
            Some(&predict_body(0)),
            Duration::from_secs(30),
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    let (status, body) = client.join().unwrap();
    assert_eq!(status, 200, "in-flight request must be drained, got {body}");
    std::fs::remove_file(ckpt).ok();
}

/// Boots the real `bikecap` binary with `serve --checkpoint`, speaks HTTP to
/// it, then delivers SIGTERM and expects a graceful (exit 0) drain.
#[cfg(unix)]
#[test]
fn cli_serve_answers_http_and_drains_on_sigterm() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let ckpt = checkpoint_path("cli");
    // The same artifact `bikecap train --save` produces: default architecture
    // knobs, so `serve` can rebuild the config from the metadata header.
    BikeCap::seeded(BikeCapConfig::new(4, 4).history(4).horizon(2), 4)
        .save_checkpoint(&ckpt)
        .unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_bikecap"))
        .args([
            "serve",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr: std::net::SocketAddr = line
        .split("http://")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in {line:?}"))
        .parse()
        .unwrap();

    let (status, body) = client_request(
        addr,
        "POST",
        "/predict",
        Some(&predict_body(3)),
        Duration::from_secs(30),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) =
        client_request(addr, "GET", "/healthz", None, Duration::from_secs(5)).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");

    let killed = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(killed.success());
    let exit = child.wait().unwrap();
    assert!(exit.success(), "SIGTERM should drain and exit 0, got {exit}");
    std::fs::remove_file(ckpt).ok();
}
