//! Chaos suite: seeded fault schedules driven end-to-end through
//! persistence and training.
//!
//! Requires the `faultline` feature (`cargo test --features faultline
//! --test chaos`); without it the failpoints are compiled out and this
//! file is empty. The schedule seed comes from `BIKECAP_CHAOS_SEED`
//! (default 0) so CI can sweep seeds without recompiling.
//!
//! Fault plans are process-global, so every test serialises on one mutex.
#![cfg(feature = "faultline")]

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use bikecap::faults::{self, FaultPlan};
use bikecap::model::{BikeCap, BikeCapConfig, ResilientOptions, TrainOptions};
use bikecap::nn::serialize::{clean_stale_tmp, read_params, save_raw_params, LoadParamsError};
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    layout::CityLayout,
    ForecastDataset,
};
use bikecap::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The sweep seed for this process's fault schedules.
fn chaos_seed() -> u64 {
    std::env::var("BIKECAP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Held for a chaos test's whole body: serialises on the process-global
/// fault plan, and — declared first so it drops last — a [`PanicDump`]
/// that replays the in-memory obs event ring to stderr if the test
/// panics, so a failing seed ships its span/value history with the
/// assertion message.
struct ChaosGuard {
    _dump: bikecap::obs::PanicDump,
    _lock: MutexGuard<'static, ()>,
}

/// Fault plans are process-global, so every test body — including its
/// fault-free phases — runs under this lock, and clears any plan a
/// panicked predecessor left behind. Also arms span recording into a
/// fresh in-memory ring that is dumped to stderr on panic.
fn chaos_lock() -> ChaosGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    faults::clear();
    let ring = std::sync::Arc::new(bikecap::obs::MemorySink::new(4096));
    bikecap::obs::install(ring.clone());
    ChaosGuard {
        _dump: bikecap::obs::PanicDump::new(format!("chaos seed {}", chaos_seed()), ring),
        _lock: guard,
    }
}

/// Installs the fault schedule for this process's sweep seed.
fn arm(spec: &str) {
    faults::install(FaultPlan::parse(spec, chaos_seed()).expect("valid fault spec"));
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bikecap-chaos-{name}-{}-{}",
        std::process::id(),
        chaos_seed()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_dataset() -> ForecastDataset {
    let mut rng = StdRng::seed_from_u64(5);
    let mut config = SimConfig::small();
    config.days = 4;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    let series = DemandSeries::from_trips(&trips, 15);
    ForecastDataset::new(&series, 8, 2)
}

fn tiny_model() -> BikeCap {
    let config = BikeCapConfig::new(6, 6)
        .history(8)
        .horizon(2)
        .pyramid_size(2)
        .capsule_dim(3)
        .out_capsule_dim(3)
        .decoder_channels(4);
    BikeCap::seeded(config, 7)
}

fn resilient_opts(checkpoint: Option<PathBuf>, epochs: usize) -> ResilientOptions {
    ResilientOptions {
        train: TrainOptions {
            epochs,
            batch_size: 4,
            max_batches_per_epoch: Some(2),
            ..TrainOptions::default()
        },
        seed: 42,
        checkpoint,
        autosave_every: 1,
        ..ResilientOptions::default()
    }
}

/// With `io.checkpoint.write` faulting on half the saves, the file visible
/// on disk is always a complete, CRC-valid earlier save — a simulated kill
/// mid-save can never surface as a checkpoint that loads but is corrupt.
#[test]
fn kill_during_save_never_yields_loadable_corrupt_checkpoint() {
    let _guard = chaos_lock();
    arm("io.checkpoint.write=p:0.5");
    let dir = tmp_dir("atomic-save");
    let path = dir.join("weights.ckpt");

    let mut last_good: Option<f32> = None;
    let mut failures = 0usize;
    for round in 0..24 {
        let value = round as f32;
        let pairs = vec![("w".to_string(), Tensor::scalar(value))];
        match save_raw_params(&pairs, &path) {
            Ok(()) => last_good = Some(value),
            Err(_) => failures += 1,
        }
        // Invariant: what's on disk is exactly the last successful save.
        match (&last_good, read_params(&path)) {
            (Some(expected), Ok((_, entries))) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].1.item(), *expected, "round {round}");
            }
            (None, Err(LoadParamsError::Io(_))) => {} // nothing ever saved
            (want, got) => panic!(
                "round {round}: want last_good={want:?}, got {:?}",
                got.map(|(_, e)| e.len())
            ),
        }
    }
    assert!(failures > 0, "p:0.5 over 24 saves must fault at least once");
    assert!(
        last_good.is_some(),
        "p:0.5 over 24 saves must succeed at least once"
    );

    // Simulated kills leave a `<file>.<pid>.tmp` sibling behind (later
    // successful saves rename the same tmp path away, so force one final
    // failed save); startup cleanup removes it without touching the real
    // checkpoint.
    arm("io.checkpoint.write=always");
    save_raw_params(&[("w".to_string(), Tensor::scalar(-1.0))], &path)
        .expect_err("an always-on fault must fail the save");
    faults::clear();
    let removed = clean_stale_tmp(&dir).unwrap();
    assert_eq!(removed.len(), 1);
    assert!(read_params(&path).is_ok());
    assert!(std::fs::read_dir(&dir)
        .unwrap()
        .all(|e| !e.unwrap().file_name().to_string_lossy().ends_with(".tmp")));
    std::fs::remove_dir_all(&dir).ok();
}

/// Training with autosave under write faults, then a simulated kill and
/// `--resume`: the resumed run reaches the uninterrupted run's loss within
/// 1e-6 (bitwise, in fact — epoch RNG streams are position-independent).
#[test]
fn resume_after_kill_converges_to_uninterrupted_loss() {
    let _guard = chaos_lock();
    let ds = tiny_dataset();
    let dir = tmp_dir("resume");

    // Baseline: 4 uninterrupted epochs, no faults, no checkpointing.
    let mut baseline = tiny_model();
    let full = baseline
        .fit_resilient(&ds, &resilient_opts(None, 4))
        .expect("uninterrupted run");

    // Interrupted run: autosave every epoch while io.checkpoint.write
    // faults fire on every third write. Each autosave is two writes
    // (checkpoint, then state), so the schedule hits both kinds across the
    // run. We stop ("kill") after 2 epochs.
    let ckpt = dir.join("train.ckpt");
    {
        arm("io.checkpoint.write=every:3");
        let mut victim = tiny_model();
        // The final save may be the faulted one, in which case the run
        // reports an Io error — exactly what a crash looks like. Either
        // way the last successful autosave's state file is on disk.
        let _ = victim.fit_resilient(&ds, &resilient_opts(Some(ckpt.clone()), 2));
        faults::clear();
    }
    assert!(
        ResilientOptions::state_path(&ckpt).exists(),
        "at least one autosave must have landed"
    );

    // Fresh process resumes to 4 epochs with faults gone.
    let mut resumed_model = tiny_model();
    let mut opts = resilient_opts(Some(ckpt.clone()), 4);
    opts.resume = true;
    let resumed = resumed_model.fit_resilient(&ds, &opts).expect("resume");

    assert!(resumed.resumed_at.is_some());
    let full_loss = *full.report.epoch_losses.last().unwrap();
    let resumed_loss = *resumed.report.epoch_losses.last().unwrap();
    assert!(
        (full_loss - resumed_loss).abs() <= 1e-6,
        "uninterrupted {full_loss} vs resumed {resumed_loss}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// An injected NaN epoch trips the divergence guard: the trainer rolls
/// back to the last good snapshot, halves the learning rate, and finishes
/// with finite losses.
#[test]
fn divergence_guard_rolls_back_injected_nan_epoch() {
    let _guard = chaos_lock();
    let ds = tiny_dataset();
    arm("train.epoch.loss=nth:2");
    let mut model = tiny_model();
    let report = model
        .fit_resilient(&ds, &resilient_opts(None, 3))
        .expect("guard must absorb a single injected NaN");
    faults::clear();

    assert!(report.rollbacks >= 1, "the injected NaN must roll back");
    assert_eq!(report.report.epoch_losses.len(), 3);
    assert!(report.report.epoch_losses.iter().all(|l| l.is_finite()));
    assert!(
        report.final_lr < TrainOptions::default().learning_rate,
        "rollback must halve the learning rate"
    );
}

/// A NaN schedule that outlasts `max_retries` aborts with the typed
/// `Diverged` error instead of looping or saving poisoned weights.
#[test]
fn unrecoverable_divergence_aborts_with_typed_error() {
    use bikecap::model::TrainerError;
    let _guard = chaos_lock();
    let ds = tiny_dataset();
    arm("train.epoch.loss=always");
    let mut opts = resilient_opts(None, 2);
    opts.max_retries = 2;
    let err = tiny_model().fit_resilient(&ds, &opts).unwrap_err();
    faults::clear();
    assert!(matches!(err, TrainerError::Diverged { .. }), "{err}");
}

/// A fault injected into block dequantization while a quantized (v4)
/// checkpoint loads must surface as the typed `Dequant` error and leave
/// the target model untouched — loads stage every shadow before writing
/// any, so a poisoned block can never leave a half-loaded store behind.
#[test]
fn dequant_fault_during_quantized_load_is_typed_and_atomic() {
    use bikecap::quant::QuantFormat;
    let _guard = chaos_lock();
    let dir = tmp_dir("quant-dequant");
    let path = dir.join("model.q8");

    let source = tiny_model();
    source
        .save_quantized_checkpoint(&path, QuantFormat::Q8_0)
        .expect("quantized save");

    let mut target = tiny_model();
    let mut rng = StdRng::seed_from_u64(3);
    let window = Tensor::rand_uniform(&[1, 4, 8, 6, 6], 0.0, 1.0, &mut rng);
    let before = target.predict(&window);

    arm("quant.dequant.block=always");
    let err = target.load_checkpoint(&path).expect_err("armed dequant must fail the load");
    assert!(
        matches!(err, LoadParamsError::Dequant { .. }),
        "want the typed Dequant error, got: {err}"
    );
    faults::clear();

    // Atomicity: the failed load wrote nothing — same weights, no quant set.
    assert_eq!(target.precision(), "f32");
    let after = target.predict(&window);
    assert_eq!(before.as_slice(), after.as_slice(), "failed load mutated the store");

    // With the fault gone the same file loads and serves quantized.
    target.load_checkpoint(&path).expect("clean load");
    assert!(target.precision().starts_with("q8_0"), "{}", target.precision());
    std::fs::remove_dir_all(&dir).ok();
}

/// The same seed fires the same schedule: two identical fault plans agree
/// on every (site, hit) decision, which is what makes chaos runs
/// reproducible from a single seed value.
#[test]
fn fault_schedule_is_deterministic_per_seed() {
    let seed = chaos_seed();
    let a = FaultPlan::parse("io.checkpoint.write=p:0.3", seed).unwrap();
    let b = FaultPlan::parse("io.checkpoint.write=p:0.3", seed).unwrap();
    for hit in 0..512 {
        assert_eq!(
            a.fires("io.checkpoint.write", hit),
            b.fires("io.checkpoint.write", hit),
            "hit {hit}"
        );
    }
    let other = FaultPlan::parse("io.checkpoint.write=p:0.3", seed ^ 0xdead_beef).unwrap();
    let disagreements = (0..512)
        .filter(|&h| a.fires("io.checkpoint.write", h) != other.fires("io.checkpoint.write", h))
        .count();
    assert!(disagreements > 0, "different seeds must differ somewhere");
}
