//! Compiled-executor equivalence regression tests.
//!
//! The contract of `bikecap-ir` is that the compiled, arena-planned
//! schedule is **bitwise identical** to the eager tape walk — not "close",
//! identical — because both dispatch to the same kernel bodies in
//! `bikecap_tensor::exec`. These tests pin that contract across the
//! EXPERIMENTS.md architecture grid (pyramid kernel sizes, capsule
//! dimensions), both predict entry points, and every `bikecap-rt` thread
//! count the determinism suite uses (the fused kernels must chunk exactly
//! like their eager counterparts).

use bikecap::model::{BikeCap, BikeCapConfig, ExecMode};
use bikecap::rt::{self, Backend};
use bikecap::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mirrors tests/parallel_determinism.rs: serial fast path, even splits,
/// and an odd count for uneven chunk distribution.
const THREADS: &[usize] = &[1, 2, 4, 7];

fn assert_bitwise_eq(label: &str, eager: &Tensor, compiled: &Tensor) {
    assert_eq!(eager.shape(), compiled.shape(), "{label}: shape drift");
    for (i, (a, b)) in eager.as_slice().iter().zip(compiled.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: element {i} diverges (eager {a} vs compiled {b})"
        );
    }
}

/// One model, one window: eager vs compiled on `predict`, `predict_batch`
/// and `predict_into`, all bitwise.
fn check_model(label: &str, config: BikeCapConfig) {
    let mut model = BikeCap::seeded(config, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let window = Tensor::rand_uniform(&[2, 4, 8, 8, 8], 0.0, 1.0, &mut rng);
    let single = Tensor::rand_uniform(&[4, 8, 8, 8], 0.0, 1.0, &mut rng);

    model.set_exec_mode(ExecMode::Eager);
    let eager_batch = model.predict(&window);
    let eager_single = model.predict(&single);
    let eager_multi = model.predict_batch(&[window.clone(), single.clone()]);

    model.set_exec_mode(ExecMode::Compiled);
    let compiled_batch = model.predict(&window);
    let compiled_single = model.predict(&single);
    let compiled_multi = model.predict_batch(&[window.clone(), single.clone()]);

    assert_bitwise_eq(&format!("{label}/predict[b=2]"), &eager_batch, &compiled_batch);
    assert_bitwise_eq(&format!("{label}/predict[b=1]"), &eager_single, &compiled_single);
    for (i, (e, c)) in eager_multi.iter().zip(&compiled_multi).enumerate() {
        assert_bitwise_eq(&format!("{label}/predict_batch[{i}]"), e, c);
    }

    let mut into = vec![0.0f32; eager_batch.as_slice().len()];
    model
        .predict_into(&window, &mut into)
        .expect("predict_into");
    let into = Tensor::from_vec(into, eager_batch.shape());
    assert_bitwise_eq(&format!("{label}/predict_into"), &eager_batch, &into);
}

/// The EXPERIMENTS.md Table IV sweep: pyramid kernel k ∈ {1, 2, 3, 4} at
/// the default capsule dimension.
#[test]
fn compiled_matches_eager_across_pyramid_sizes() {
    for k in [1usize, 2, 3, 4] {
        let config = BikeCapConfig::new(8, 8).history(8).horizon(4).pyramid_size(k);
        check_model(&format!("pyramid_k={k}"), config);
    }
}

/// The EXPERIMENTS.md Table V sweep: capsule dimension n ∈ {2, 4, 8, 16}
/// at the default pyramid size.
#[test]
fn compiled_matches_eager_across_capsule_dims() {
    for n in [2usize, 4, 8, 16] {
        let config = BikeCapConfig::new(8, 8).history(8).horizon(4).capsule_dim(n);
        check_model(&format!("capsule_dim={n}"), config);
    }
}

/// Compiled execution must stay bitwise identical to serial eager at every
/// thread count (the fused kernels inherit rt's deterministic chunking).
#[test]
fn compiled_is_bitwise_stable_across_thread_counts() {
    let config = BikeCapConfig::new(8, 8).history(8).horizon(4);
    let mut model = BikeCap::seeded(config, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let window = Tensor::rand_uniform(&[3, 4, 8, 8, 8], 0.0, 1.0, &mut rng);

    rt::set_backend(Backend::Serial);
    model.set_exec_mode(ExecMode::Eager);
    let reference = model.predict(&window);

    model.set_exec_mode(ExecMode::Compiled);
    let serial_compiled = model.predict(&window);
    assert_bitwise_eq("serial compiled", &reference, &serial_compiled);

    rt::set_backend(Backend::Parallel);
    for &threads in THREADS {
        rt::set_threads(threads);
        let got = model.predict(&window);
        assert_bitwise_eq(&format!("compiled @ {threads} threads"), &reference, &got);
    }
    rt::set_threads(0);
}

/// Fusion off must not change results either (it only changes how many
/// kernels run, never their arithmetic).
#[test]
fn fusion_toggle_is_bitwise_invisible() {
    let config = BikeCapConfig::new(8, 8).history(8).horizon(4);
    let mut model = BikeCap::seeded(config, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let window = Tensor::rand_uniform(&[2, 4, 8, 8, 8], 0.0, 1.0, &mut rng);

    model.set_exec_mode(ExecMode::Eager);
    let eager = model.predict(&window);

    // Compile the model's forward by hand with fusion disabled, via the
    // public IR pipeline, and compare against the default compiled path.
    let mut tape = bikecap::autograd::Tape::traced();
    let x = tape.constant(Tensor::zeros(&[2, 4, 8, 8, 8]));
    let y = model.forward(&mut tape, x);
    let graph = bikecap::ir::Graph::from_tape(&tape, x, y).expect("lowering");
    for fusion in [false, true] {
        let plan = bikecap::ir::ModelPlan::compile(
            graph.clone(),
            &bikecap::ir::CompileOptions { fusion },
        )
        .expect("planning");
        let mut arena = bikecap::ir::Arena::for_plan(&plan);
        let mut out = vec![0.0f32; plan.output_len()];
        bikecap::ir::Executor::execute(
            &bikecap::ir::CpuExecutor,
            &plan,
            model.store(),
            window.as_slice(),
            &mut arena,
            &mut out,
        )
        .expect("execution");
        let got = Tensor::from_vec(out, plan.out_shape());
        assert_bitwise_eq(&format!("fusion={fusion}"), &eager, &got);
    }
}
