//! Property test tying the static shape checker to the runtime model.
//!
//! The contract `bikecap check-config` advertises: a configuration the
//! checker accepts constructs and predicts without panicking, with exactly
//! the output extents the plan promised; a configuration it rejects fails
//! model construction with the *same* typed error. This test enumerates a
//! seeded sweep of generated configurations (no proptest dependency — the
//! generator is a hand-rolled splitmix so the case list is identical on
//! every machine) plus a set of deliberately degenerate configurations, and
//! checks both directions of the contract on each.

use std::panic;

use bikecap::model::{BikeCap, BikeCapConfig};
use bikecap::tensor::Tensor;

/// splitmix64 — deterministic case generator independent of the rand crate.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform pick from an inclusive range (small ranges only).
    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

/// Random-but-reproducible configurations spanning the knobs the checker
/// composes: grid extent, history depth, pyramid size, capsule dims,
/// decoder width, routing iterations. Some are valid, some violate a
/// contract (e.g. a pyramid kernel taller than the padded history) — the
/// test doesn't need to know which; it holds the checker to the model
/// either way.
fn generated_configs(cases: usize, seed: u64) -> Vec<BikeCapConfig> {
    let mut g = Gen(seed);
    (0..cases)
        .map(|_| {
            BikeCapConfig::new(g.pick(1, 8), g.pick(1, 8))
                .history(g.pick(1, 8))
                .horizon(g.pick(1, 4))
                .pyramid_size(g.pick(1, 6))
                .capsule_dim(g.pick(1, 6))
                .out_capsule_dim(g.pick(1, 6))
                .hist_layers(g.pick(1, 3))
                .routing_iters(g.pick(1, 3))
                .decoder_channels(g.pick(1, 4))
                .separate_slot_transforms(g.next().is_multiple_of(2))
        })
        .collect()
}

/// Configurations known to trip specific contracts, so the rejection arm is
/// exercised even if the generated sweep happens to produce only valid ones.
fn degenerate_configs() -> Vec<BikeCapConfig> {
    vec![
        // Grid too small for any capsule column.
        BikeCapConfig::new(1, 1).history(4).pyramid_size(4),
        // Degenerate zero extents, one per axis family.
        BikeCapConfig::new(4, 4).history(0),
        BikeCapConfig::new(4, 4).horizon(0),
        BikeCapConfig::new(4, 4).capsule_dim(0),
        BikeCapConfig::new(4, 4).out_capsule_dim(0),
        BikeCapConfig::new(4, 4).hist_layers(0),
        BikeCapConfig::new(4, 4).decoder_channels(0),
    ]
}

fn assert_contract(config: BikeCapConfig) {
    let verdict = config.check_shapes();
    match verdict {
        Ok(plan) => {
            // Accepted ⇒ constructs without error…
            let model = BikeCap::build_seeded(config.clone(), 11)
                .unwrap_or_else(|e| panic!("checker accepted {config:?} but build failed: {e}"));
            // …and predicts a tensor with exactly the plan's output extents.
            let input = Tensor::ones(&[
                plan.input.channels,
                plan.input.time,
                plan.input.height,
                plan.input.width,
            ]);
            let out = model.predict(&input);
            let promised = plan.output();
            assert_eq!(
                out.shape(),
                &[promised.time, promised.height, promised.width],
                "plan promised {promised} for {config:?}"
            );
        }
        Err(err) => {
            // Rejected ⇒ the fallible constructor fails with the same error…
            let build_err = BikeCap::build_seeded(config.clone(), 11)
                .expect_err("checker rejected the config; build must too");
            assert_eq!(
                build_err.to_string(),
                err.to_string(),
                "build and checker must report the same contract violation"
            );
            // …and the panicking constructor carries the same message.
            let message = format!("{err}");
            let caught = panic::catch_unwind(panic::AssertUnwindSafe(|| {
                BikeCap::seeded(config.clone(), 11)
            }))
            .expect_err("checker rejected the config; BikeCap::seeded must panic");
            let panic_text = caught
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(
                panic_text.contains(&message),
                "panic {panic_text:?} should contain the checker error {message:?}"
            );
        }
    }
}

#[test]
fn checker_verdict_matches_runtime_construction() {
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for config in generated_configs(32, 0x0b1cecab).into_iter().chain(degenerate_configs()) {
        if config.check_shapes().is_ok() {
            accepted += 1;
        } else {
            rejected += 1;
        }
        assert_contract(config);
    }
    // The sweep must genuinely exercise both arms of the contract.
    assert!(accepted >= 4, "sweep produced too few valid configs ({accepted})");
    assert!(rejected >= 4, "sweep produced too few invalid configs ({rejected})");
}
