//! Thread-count determinism regression tests for the `bikecap-rt` runtime.
//!
//! The pool's contract is that chunk decomposition and reduction order are
//! pure functions of the problem shape — never of the thread count — so a
//! parallel run is bitwise-identical to a serial one at *any* pool size.
//! These tests pin that contract end to end: the full `BikeCap::predict`
//! inference path across thread counts 1, 2, 4 and 7 (an odd count
//! exercises uneven chunk distribution), and a conv3d/conv_transpose3d
//! property sweep over the EXPERIMENTS.md shape grid (pyramid kernel sizes,
//! capsule-dim-scaled channel counts).
//!
//! Thread count and backend are process-global; each test restores the auto
//! defaults on exit so ordering between tests never matters (the contract
//! itself guarantees results don't depend on the settings mid-flight).

use bikecap::model::{BikeCap, BikeCapConfig};
use bikecap::rt::{self, Backend};
use bikecap::tensor::conv::{conv3d, conv_transpose3d, Conv3dSpec};
use bikecap::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The thread sweep: 1 (serial fast path), 2 and 4 (even splits), 7 (odd —
/// workers see unequal chunk counts).
const THREADS: &[usize] = &[1, 2, 4, 7];

fn assert_bitwise_eq(label: &str, reference: &Tensor, got: &Tensor) {
    assert_eq!(reference.shape(), got.shape(), "{label}: shape drift");
    for (i, (a, b)) in reference.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}: element {i} diverges ({a} vs {b})"
        );
    }
}

/// Runs `op` serially, then at every thread count in [`THREADS`], asserting
/// bitwise equality throughout; restores auto settings afterwards.
fn check_all_thread_counts(label: &str, op: impl Fn() -> Tensor) {
    rt::set_backend(Backend::Serial);
    let reference = op();
    rt::set_backend(Backend::Parallel);
    for &threads in THREADS {
        rt::set_threads(threads);
        let got = op();
        assert_bitwise_eq(&format!("{label} @ {threads} threads"), &reference, &got);
    }
    rt::set_threads(0);
}

#[test]
fn predict_is_bitwise_identical_across_thread_counts() {
    // Small but complete: encoder pyramid -> historical capsules -> routing
    // -> deconv decoder, so every parallelized kernel runs in context.
    let config = BikeCapConfig::new(8, 8).history(8).horizon(4);
    let model = BikeCap::seeded(config, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let window = Tensor::rand_uniform(&[3, 4, 8, 8, 8], 0.0, 1.0, &mut rng);
    check_all_thread_counts("BikeCap::predict", || model.predict(&window));
}

#[test]
fn predict_batch_is_bitwise_identical_across_thread_counts() {
    // The serve path fuses requests into one forward pass; intra-batch
    // parallelism must not perturb any individual answer.
    let config = BikeCapConfig::new(8, 8).history(8).horizon(2);
    let model = BikeCap::seeded(config, 3);
    let mut rng = StdRng::seed_from_u64(11);
    let inputs: Vec<Tensor> = (0..5)
        .map(|_| Tensor::rand_uniform(&[4, 8, 8, 8], 0.0, 1.0, &mut rng))
        .collect();

    rt::set_backend(Backend::Serial);
    let reference = model.predict_batch(&inputs);
    rt::set_backend(Backend::Parallel);
    for &threads in THREADS {
        rt::set_threads(threads);
        let got = model.predict_batch(&inputs);
        assert_eq!(reference.len(), got.len());
        for (i, (r, g)) in reference.iter().zip(&got).enumerate() {
            assert_bitwise_eq(&format!("predict_batch[{i}] @ {threads} threads"), r, g);
        }
    }
    rt::set_threads(0);
}

#[test]
fn conv3d_sweep_is_bitwise_identical_across_thread_counts() {
    // The EXPERIMENTS.md grid: 8x8 city, pyramid kernel sizes 1..=4 (depth k,
    // spatial 2k-1), channel counts from the capsule-dim ablation {2,4,8,16}.
    let mut rng = StdRng::seed_from_u64(2018);
    for k in 1usize..=4 {
        let (kd, ks) = (k, 2 * k - 1);
        for &channels in &[2usize, 4, 8, 16] {
            let x = Tensor::randn(&[2, channels, 8, 8, 8], 0.0, 1.0, &mut rng);
            let w = Tensor::randn(&[channels, channels, kd, ks, ks], 0.0, 0.1, &mut rng);
            let spec = Conv3dSpec::padded(kd / 2, ks / 2, ks / 2);
            check_all_thread_counts(&format!("conv3d k={k} c={channels}"), || {
                conv3d(&x, &w, spec)
            });
        }
    }
}

#[test]
fn conv_transpose3d_sweep_is_bitwise_identical_across_thread_counts() {
    // The decoder's upsampling direction: col2im's scatter-add is the
    // easiest kernel to get nondeterministic, so sweep it hardest.
    let mut rng = StdRng::seed_from_u64(1024);
    for k in 1usize..=4 {
        let (kd, ks) = (k, 2 * k - 1);
        for &channels in &[2usize, 4, 8] {
            let x = Tensor::randn(&[2, channels, 4, 8, 8], 0.0, 1.0, &mut rng);
            let w = Tensor::randn(&[channels, channels, kd, ks, ks], 0.0, 0.1, &mut rng);
            let spec = Conv3dSpec::default();
            check_all_thread_counts(&format!("conv_transpose3d k={k} c={channels}"), || {
                conv_transpose3d(&x, &w, spec)
            });
        }
    }
}

#[test]
fn matmul_and_reduce_are_bitwise_identical_across_thread_counts() {
    // Catastrophic-cancellation-prone values make any reassociation visible.
    let mut rng = StdRng::seed_from_u64(5);
    let a = Tensor::randn(&[64, 300], 1.0e4, 1.0e4, &mut rng);
    let b = Tensor::randn(&[300, 32], -1.0e4, 1.0e4, &mut rng);
    check_all_thread_counts("matmul 64x300x32", || a.matmul(&b));
}
