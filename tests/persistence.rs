//! Weight persistence across crates: a trained BikeCAP round-trips through
//! the text format and reproduces its predictions exactly.

use bikecap::model::{BikeCap, BikeCapConfig, TrainOptions};
use bikecap::nn::serialize::{load_params, save_params, LoadParamsError};
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    layout::CityLayout,
    ForecastDataset, Split,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> ForecastDataset {
    let mut rng = StdRng::seed_from_u64(88);
    let mut config = SimConfig::small();
    config.days = 4;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    let series = DemandSeries::from_trips(&trips, 15);
    ForecastDataset::new(&series, 8, 2)
}

fn model_config() -> BikeCapConfig {
    BikeCapConfig::new(6, 6)
        .history(8)
        .horizon(2)
        .pyramid_size(2)
        .capsule_dim(3)
        .out_capsule_dim(3)
}

#[test]
fn trained_model_roundtrips_through_weight_file() {
    let ds = dataset();
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = BikeCap::new(model_config(), &mut rng);
    model.fit(&ds, &TrainOptions::smoke(), &mut rng);

    let path = std::env::temp_dir().join(format!("bikecap-roundtrip-{}.txt", std::process::id()));
    save_params(model.store(), &path).expect("save weights");

    // A fresh model with different init must predict differently…
    let mut rng2 = StdRng::seed_from_u64(999);
    let mut fresh = BikeCap::new(model_config(), &mut rng2);
    let anchors = ds.anchors(Split::Test);
    let batch = ds.batch(&anchors[..2]);
    let before = fresh.predict(&batch.input);
    assert!(before.sub(&model.predict(&batch.input)).abs().sum() > 0.0);

    // …and exactly match after loading the saved weights.
    load_params(fresh.store_mut(), &path).expect("load weights");
    bikecap::tensor::assert_close(&fresh.predict(&batch.input), &model.predict(&batch.input), 0.0);
    std::fs::remove_file(path).ok();
}

#[test]
fn loading_into_mismatched_architecture_fails_cleanly() {
    let mut rng = StdRng::seed_from_u64(6);
    let model = BikeCap::new(model_config(), &mut rng);
    let path = std::env::temp_dir().join(format!("bikecap-mismatch-{}.txt", std::process::id()));
    save_params(model.store(), &path).expect("save weights");

    // Different capsule dimension => different weight shapes.
    let mut other = BikeCap::new(model_config().capsule_dim(5), &mut rng);
    let err = load_params(other.store_mut(), &path).unwrap_err();
    assert!(
        matches!(err, LoadParamsError::Mismatch(_)),
        "expected a shape mismatch, got {err}"
    );
    std::fs::remove_file(path).ok();
}
