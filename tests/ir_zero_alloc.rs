//! Steady-state allocation contract of the compiled executor, plus the IR
//! chaos-resilience sweep.
//!
//! The whole point of arena planning is that after the first compiled
//! prediction of a given input shape (which compiles the plan and builds
//! the arena), every subsequent `predict_into` performs **zero** heap
//! allocations. A counting global allocator (this test binary only) turns
//! that from a design note into a regression gate.
//!
//! The gate runs on the serial backend **and** on the pool at 2 and 4
//! threads: bikecap-rt recycles job shells through a per-pool freelist, so
//! steady-state parallel dispatch is allocation-free too (this caught the
//! 4 → 14 allocs/iter regression BENCH_parallel.json recorded before the
//! freelist landed). The serial path runs the exact same kernel bodies
//! (that is the rt determinism contract, pinned by tests/ir_equivalence.rs
//! at thread counts 1/2/4/7).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bikecap::model::{BikeCap, BikeCapConfig, ExecMode};
use bikecap::rt::{self, Backend};
use bikecap::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_compiled_predict_does_not_allocate() {
    let configs: [(Backend, usize); 3] = [
        (Backend::Serial, 1),
        (Backend::Parallel, 2),
        (Backend::Parallel, 4),
    ];
    for (backend, threads) in configs {
        rt::set_backend(backend);
        rt::set_threads(threads);
        let config = BikeCapConfig::new(8, 8).history(8).horizon(4);
        let mut model = BikeCap::seeded(config, 42);
        model.set_exec_mode(ExecMode::Compiled);
        let mut rng = StdRng::seed_from_u64(7);
        let window = Tensor::rand_uniform(&[4, 8, 8, 8], 0.0, 1.0, &mut rng);

        // Warm-up: compiles the plan, builds the arena, fills every pool —
        // including the rt job-shell freelist on the parallel backend.
        let expected = model.predict(&window);
        let mut out = vec![0.0f32; expected.as_slice().len()];
        model.predict_into(&window, &mut out).expect("warm-up");

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..50 {
            model.predict_into(&window, &mut out).expect("steady state");
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "steady-state compiled predict_into must be allocation-free \
             (backend {backend:?}, threads {threads})"
        );

        // And it still computed the right thing.
        for (i, (a, b)) in expected.as_slice().iter().zip(&out).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "element {i} diverges (backend {backend:?}, threads {threads})"
            );
        }
    }
    rt::set_backend(Backend::Parallel);
    rt::set_threads(0);
}

/// Chaos sweep over the IR failpoints: whatever fires — plan-time or
/// step-time, any seed — predictions must come back (via the eager
/// fallback), bitwise equal to the oracle, with no panic. Runs only with
/// the `faultline` feature (the sites compile to no-ops otherwise); the
/// seed comes from `BIKECAP_CHAOS_SEED` so the CI matrix can sweep it.
#[test]
#[cfg(feature = "faultline")]
fn ir_failpoints_degrade_to_eager_not_panic() {
    use bikecap::faults;

    let seed: u64 = std::env::var("BIKECAP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let config = BikeCapConfig::new(8, 8).history(8).horizon(4);
    let mut rng = StdRng::seed_from_u64(7);
    let window = Tensor::rand_uniform(&[2, 4, 8, 8, 8], 0.0, 1.0, &mut rng);

    // The oracle, computed with no faults armed.
    let mut oracle_model = BikeCap::seeded(config.clone(), 42);
    oracle_model.set_exec_mode(ExecMode::Eager);
    let oracle = oracle_model.predict(&window);

    let plans = [
        "ir.plan.build=nth:1".to_string(),
        format!("ir.exec.step=nth:{}", 1 + seed % 40),
        format!("ir.exec.step=every:{}", 2 + seed % 5),
        "ir.plan.build=p:0.5;ir.exec.step=p:0.05".to_string(),
    ];
    for spec in &plans {
        let plan = faults::FaultPlan::parse(spec, seed).expect("fault spec");
        faults::install(plan);
        // Fresh model per plan so compilation itself runs under fire.
        let mut model = BikeCap::seeded(config.clone(), 42);
        model.set_exec_mode(ExecMode::Compiled);
        for round in 0..3 {
            let got = model.predict(&window);
            assert_eq!(got.shape(), oracle.shape(), "{spec} round {round}");
            for (i, (a, b)) in oracle.as_slice().iter().zip(got.as_slice()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{spec} round {round}: element {i} diverges"
                );
            }
        }
        faults::clear();
    }
}
