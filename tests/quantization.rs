//! Quantized-inference determinism regression tests.
//!
//! Loading a Q8_0 checkpoint swaps the matmul/conv3d kernel bodies, but
//! the determinism contracts are unchanged: the eager tape (through the
//! `ForwardOverride` overlay) and the compiled executor (through
//! `QuantExecutor`) call the *same* quantized kernels, and those kernels
//! chunk through `bikecap-rt`'s one-owner-per-row splitter — so quantized
//! predictions must be bitwise identical across exec modes and at every
//! thread count, exactly like the f32 path pinned by tests/ir_equivalence.rs
//! and tests/parallel_determinism.rs.

use std::path::PathBuf;

use bikecap::model::{BikeCap, BikeCapConfig, ExecMode};
use bikecap::quant::QuantFormat;
use bikecap::rt::{self, Backend};
use bikecap::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mirrors tests/parallel_determinism.rs: serial fast path, even splits,
/// and an odd count for uneven chunk distribution.
const THREADS: &[usize] = &[1, 2, 4, 7];

fn assert_bitwise_eq(label: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{label}: shape drift");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: element {i} diverges ({x} vs {y})"
        );
    }
}

fn tmp_ckpt(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bikecap-quanttest-{name}-{}.q8", std::process::id()))
}

/// A model with its weights reloaded through the quantized container, so
/// kernel dispatch goes through the QuantSet in both exec modes.
fn quantized_model(config: BikeCapConfig, name: &str) -> BikeCap {
    let source = BikeCap::seeded(config.clone(), 42);
    let path = tmp_ckpt(name);
    source
        .save_quantized_checkpoint(&path, QuantFormat::Q8_0)
        .expect("quantized save");
    let mut model = BikeCap::seeded(config, 1);
    model.load_checkpoint(&path).expect("quantized load");
    std::fs::remove_file(&path).ok();
    assert!(model.precision().starts_with("q8_0"), "{}", model.precision());
    model
}

/// Eager and compiled execution of a quantized model agree bitwise — the
/// overlay and the executor resolve the same ParamIds to the same Q8
/// tensors and call the same kernel bodies.
#[test]
fn quantized_eager_matches_compiled_bitwise() {
    let config = BikeCapConfig::new(8, 8).history(8).horizon(4);
    let mut model = quantized_model(config, "eager-vs-compiled");
    let mut rng = StdRng::seed_from_u64(7);
    let window = Tensor::rand_uniform(&[2, 4, 8, 8, 8], 0.0, 1.0, &mut rng);
    let single = Tensor::rand_uniform(&[4, 8, 8, 8], 0.0, 1.0, &mut rng);

    model.set_exec_mode(ExecMode::Eager);
    let eager_batch = model.predict(&window);
    let eager_single = model.predict(&single);

    model.set_exec_mode(ExecMode::Compiled);
    let compiled_batch = model.predict(&window);
    let compiled_single = model.predict(&single);

    assert_bitwise_eq("q8/predict[b=2]", &eager_batch, &compiled_batch);
    assert_bitwise_eq("q8/predict[b=1]", &eager_single, &compiled_single);
}

/// Quantized prediction is bitwise stable at every thread count, in both
/// exec modes, against the serial reference.
#[test]
fn quantized_predict_is_bitwise_stable_across_thread_counts() {
    let config = BikeCapConfig::new(8, 8).history(8).horizon(4);
    let mut model = quantized_model(config, "threads");
    let mut rng = StdRng::seed_from_u64(7);
    let window = Tensor::rand_uniform(&[3, 4, 8, 8, 8], 0.0, 1.0, &mut rng);

    rt::set_backend(Backend::Serial);
    model.set_exec_mode(ExecMode::Eager);
    let reference = model.predict(&window);

    rt::set_backend(Backend::Parallel);
    for mode in [ExecMode::Eager, ExecMode::Compiled] {
        model.set_exec_mode(mode);
        for &threads in THREADS {
            rt::set_threads(threads);
            let got = model.predict(&window);
            assert_bitwise_eq(&format!("q8 {mode:?} @ {threads} threads"), &reference, &got);
        }
    }
    rt::set_threads(0);
}

/// The quantized model stays close to its f32 source — the same bound the
/// `bikecap-check quant-eval` gate enforces across the EXPERIMENTS.md grid,
/// pinned here for the default config so plain `cargo test` covers it.
#[test]
fn quantized_predictions_track_f32_within_the_gate() {
    let config = BikeCapConfig::new(8, 8).history(8).horizon(4);
    let f32_model = BikeCap::seeded(config.clone(), 42);
    let quantized = quantized_model(config, "accuracy");
    let mut rng = StdRng::seed_from_u64(7);
    let window = Tensor::rand_uniform(&[2, 4, 8, 8, 8], 0.0, 1.0, &mut rng);

    let want = f32_model.predict(&window);
    let got = quantized.predict(&window);
    let mut err = 0.0f64;
    let mut scale = 0.0f64;
    for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
        err += f64::from(a - b) * f64::from(a - b);
        scale += f64::from(*a) * f64::from(*a);
    }
    let relative = (err / scale.max(f64::MIN_POSITIVE)).sqrt();
    assert!(relative < 0.02, "relative RMSE {relative} exceeds the 2% gate");
}
