//! Cross-crate integration: the full pipeline from record-level simulation
//! through training to denormalised evaluation.

use bikecap::eval::{evaluate, BikeCapForecaster};
use bikecap::model::{BikeCap, BikeCapConfig, TrainOptions, Variant};
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    layout::CityLayout,
    ForecastDataset, Split,
};
use bikecap::tensor::Tensor;
use bikecap_baselines::Forecaster;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn pipeline_dataset(days: u32, horizon: usize) -> ForecastDataset {
    let mut rng = StdRng::seed_from_u64(1234);
    let mut config = SimConfig::small();
    config.days = days;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    let series = DemandSeries::from_trips(&trips, 15);
    ForecastDataset::new(&series, 8, horizon)
}

/// Climatology: predicts the training-split mean (in normalised units)
/// everywhere — the honest "no model" reference.
struct Climatology(f32);

impl Climatology {
    fn fit(dataset: &ForecastDataset) -> Self {
        let anchors = dataset.anchors(Split::Train);
        let sample: Vec<usize> = anchors.iter().copied().step_by(7).collect();
        let batch = dataset.batch(&sample);
        Climatology(batch.target.mean())
    }
}

impl Forecaster for Climatology {
    fn name(&self) -> &'static str {
        "climatology"
    }
    fn fit(&mut self, _: &ForecastDataset, _: &mut dyn RngCore) -> f32 {
        0.0
    }
    fn predict(&self, input: &Tensor, horizon: usize) -> Tensor {
        let s = input.shape();
        Tensor::full(&[s[0], horizon, s[3], s[4]], self.0)
    }
}

#[test]
fn full_pipeline_trains_and_beats_climatology_rmse() {
    let dataset = pipeline_dataset(6, 2);
    let mut rng = StdRng::seed_from_u64(9);
    let config = BikeCapConfig::new(6, 6)
        .history(8)
        .horizon(2)
        .pyramid_size(2)
        .capsule_dim(4)
        .out_capsule_dim(4);
    let mut model = BikeCap::new(config, &mut rng);
    let options = TrainOptions {
        epochs: 12,
        batch_size: 16,
        max_batches_per_epoch: Some(12),
        learning_rate: 3e-3,
        ..TrainOptions::default()
    };
    let report = model.fit(&dataset, &options, &mut rng);
    assert!(report.final_loss().expect("epochs ran").is_finite());

    let fc = BikeCapForecaster::new(model, options);
    let ours = evaluate(&fc, &dataset, Some(24));
    let clim = evaluate(&Climatology::fit(&dataset), &dataset, Some(24));
    assert!(
        ours.rmse < clim.rmse,
        "BikeCAP RMSE {} should beat climatology RMSE {}",
        ours.rmse,
        clim.rmse
    );
}

#[test]
fn predictions_are_finite_and_well_shaped_for_all_variants() {
    let dataset = pipeline_dataset(4, 3);
    let anchors = dataset.anchors(Split::Test);
    let batch = dataset.batch(&anchors[..4]);
    for variant in Variant::all() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = BikeCapConfig::new(6, 6)
            .history(8)
            .horizon(3)
            .pyramid_size(2)
            .capsule_dim(3)
            .out_capsule_dim(3)
            .variant(variant);
        let model = BikeCap::new(config, &mut rng);
        let pred = model.predict(&batch.input);
        assert_eq!(pred.shape(), &[4, 3, 6, 6], "{}", variant.name());
        assert!(pred.all_finite(), "{} produced NaN", variant.name());
    }
}

#[test]
fn denormalised_evaluation_has_count_scale() {
    // Normalised values live in [0,1]; denormalised errors must be on the
    // scale of actual bike counts (the simulator averages ~1-3 per cell-slot).
    let dataset = pipeline_dataset(4, 2);
    struct Zero;
    impl Forecaster for Zero {
        fn name(&self) -> &'static str {
            "zero"
        }
        fn fit(&mut self, _: &ForecastDataset, _: &mut dyn RngCore) -> f32 {
            0.0
        }
        fn predict(&self, input: &Tensor, horizon: usize) -> Tensor {
            let s = input.shape();
            Tensor::zeros(&[s[0], horizon, s[3], s[4]])
        }
    }
    let m = evaluate(&Zero, &dataset, Some(16));
    assert!(m.mae > 0.3, "denormalised MAE suspiciously small: {}", m.mae);
    assert!(m.rmse > m.mae);
}

#[test]
fn longer_horizons_are_harder_for_recursive_models() {
    // The core multi-step claim, end to end: XGBoost's recursive MAE at
    // PTS=6 exceeds its MAE at PTS=1-2.
    use bikecap_baselines::{GbtConfig, GbtForecaster};
    let short = pipeline_dataset(6, 2);
    let long = pipeline_dataset(6, 6);
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = GbtForecaster::new(GbtConfig {
        n_trees: 25,
        subsample_anchors: 120,
        ..GbtConfig::default()
    });
    model.fit(&short, &mut rng);
    let m_short = evaluate(&model, &short, Some(24));
    let m_long = evaluate(&model, &long, Some(24));
    assert!(
        m_long.mae > m_short.mae,
        "recursive multi-step should be harder: PTS=2 {} vs PTS=6 {}",
        m_short.mae,
        m_long.mae
    );
}
