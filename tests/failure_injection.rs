//! Failure injection: the library must fail loudly and precisely on invalid
//! inputs, and stay numerically sane on degenerate ones.

use bikecap::model::{BikeCap, BikeCapConfig};
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    layout::CityLayout,
    ForecastDataset, Normalizer,
};
use bikecap::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_series(days: u32) -> DemandSeries {
    let mut rng = StdRng::seed_from_u64(55);
    let mut config = SimConfig::small();
    config.days = days;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    DemandSeries::from_trips(&trips, 15)
}

#[test]
#[should_panic(expected = "too short")]
fn dataset_rejects_horizon_longer_than_split() {
    let series = small_series(2);
    let _ = ForecastDataset::new(&series, 8, 50);
}

#[test]
#[should_panic(expected = "slot length must divide a day")]
fn aggregation_rejects_nonuniform_slot_length() {
    let mut rng = StdRng::seed_from_u64(1);
    let config = SimConfig::small();
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    let _ = DemandSeries::from_trips(&trips, 7);
}

#[test]
#[should_panic(expected = "empty range")]
fn normalizer_rejects_empty_fit_range() {
    let series = small_series(2);
    let _ = Normalizer::fit(&series, 5..5);
}

#[test]
#[should_panic(expected = "grid too small")]
fn model_rejects_degenerate_grid() {
    let mut rng = StdRng::seed_from_u64(2);
    let _ = BikeCap::new(BikeCapConfig::new(1, 1), &mut rng);
}

#[test]
#[should_panic(expected = "rank-4 or rank-5")]
fn model_rejects_wrong_input_rank() {
    let mut rng = StdRng::seed_from_u64(3);
    let model = BikeCap::new(
        BikeCapConfig::new(6, 6).pyramid_size(2).capsule_dim(3),
        &mut rng,
    );
    // Rank 4 is a valid single window and rank 5 a batch; rank 3 is refused
    // with a typed panic rather than garbage downstream.
    let _ = model.predict(&Tensor::zeros(&[8, 6, 6]));
}

#[test]
fn nan_inputs_are_detectable_in_outputs() {
    // The library does not silently scrub NaN: a poisoned window yields a
    // detectably non-finite prediction, so callers can guard with
    // `all_finite` at ingestion boundaries.
    let mut rng = StdRng::seed_from_u64(4);
    let model = BikeCap::new(
        BikeCapConfig::new(6, 6)
            .history(4)
            .horizon(2)
            .pyramid_size(2)
            .capsule_dim(3)
            .out_capsule_dim(3),
        &mut rng,
    );
    let mut input = Tensor::zeros(&[1, 4, 4, 6, 6]);
    input.set(&[0, 0, 0, 0, 0], f32::NAN);
    assert!(!input.all_finite());
    let out = model.predict(&input);
    assert!(!out.all_finite(), "NaN must not be silently laundered");
}

#[test]
fn empty_demand_series_still_normalises() {
    // A city with no trips at all: aggregation yields zeros; min-max
    // normalisation must not divide by zero.
    let mut rng = StdRng::seed_from_u64(5);
    let mut config = SimConfig::small();
    config.od_scale = 0.0;
    config.bike_background_rate = 0.0;
    config.days = 4;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config.clone(), layout).run(&mut rng);
    assert_eq!(trips.bike_trips(), 0);
    let series = DemandSeries::from_trips(&trips, 15);
    let ds = ForecastDataset::new(&series, 8, 2);
    let anchors = ds.anchors(bikecap::sim::Split::Train);
    let batch = ds.batch(&anchors[..4]);
    assert!(batch.input.all_finite());
    assert!(batch.target.all_finite());
}

#[test]
fn extreme_demand_values_stay_finite_through_the_model() {
    let mut rng = StdRng::seed_from_u64(6);
    let model = BikeCap::new(
        BikeCapConfig::new(6, 6)
            .history(4)
            .horizon(2)
            .pyramid_size(2)
            .capsule_dim(3)
            .out_capsule_dim(3),
        &mut rng,
    );
    // Inputs far outside the normalised [0,1] range (e.g. an unseen surge).
    let input = Tensor::full(&[1, 4, 4, 6, 6], 50.0);
    let out = model.predict(&input);
    assert!(out.all_finite(), "squash must keep extreme inputs bounded");
}
