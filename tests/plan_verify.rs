//! End-to-end gate for the plan verifier: every plan the planner produces
//! for the EXPERIMENTS.md grid must verify clean, every seeded corruption
//! of those plans must be rejected, and strict mode must not get in the
//! way of a healthy model's compiled predictions.

use bikecap::check::sweep_configs;
use bikecap::model::{BikeCap, ExecMode, VerifyMode};
use bikecap::tensor::Tensor;
use bikecap::verify::{mutate, verify_view};

/// Compile a fresh plan for each sweep configuration and verify it.
#[test]
fn every_grid_plan_verifies_clean() {
    let mut verified = 0usize;
    for (name, config) in sweep_configs() {
        let model = BikeCap::build_seeded(config, 11).expect("sweep config builds");
        let Some(plan) = model.compile_fresh_plan(2) else {
            // Eager fallback is legal; the verifier only speaks to plans
            // that exist.
            continue;
        };
        let report = verify_view(&plan.view());
        assert!(
            report.is_clean(),
            "{name}: planner-produced plan rejected:\n{}",
            report.summary()
        );
        verified += 1;
    }
    assert!(verified > 0, "no sweep config produced a compiled plan");
}

/// Seeded corruptions must be rejected — 100%, across several configs.
#[test]
fn seeded_corruptions_are_rejected() {
    let mut applied = 0usize;
    for (name, config) in sweep_configs().into_iter().take(6) {
        let model = BikeCap::build_seeded(config, 11).expect("sweep config builds");
        let Some(plan) = model.compile_fresh_plan(2) else {
            continue;
        };
        let view = plan.view();
        for seed in 0..4 {
            for outcome in mutate::exercise(&view, seed) {
                applied += 1;
                assert!(
                    outcome.rejected,
                    "{name}: seed {seed}: mutation accepted: {}",
                    outcome.mutation
                );
            }
        }
    }
    assert!(applied > 0, "mutation harness never ran");
}

/// Strict mode keeps healthy plans compiled: predictions still come from
/// the compiled executor and match the eager oracle bitwise.
#[test]
fn strict_mode_accepts_healthy_plans() {
    let (_, config) = sweep_configs().into_iter().next().expect("sweep nonempty");
    let mut model = BikeCap::build_seeded(config.clone(), 11).expect("config builds");
    model.set_verify_mode(VerifyMode::Strict);
    assert_eq!(model.verify_mode(), VerifyMode::Strict);

    let features = config.input_features();
    let shape = [
        1usize,
        features,
        config.history,
        config.grid_height,
        config.grid_width,
    ];
    let len: usize = shape.iter().product();
    let x = Tensor::from_vec(
        (0..len).map(|i| (i % 13) as f32 * 0.05).collect(),
        &shape,
    );

    model.set_exec_mode(ExecMode::Compiled);
    let compiled = model.predict(&x);
    model.set_exec_mode(ExecMode::Eager);
    let eager = model.predict(&x);
    assert_eq!(
        compiled.as_slice(),
        eager.as_slice(),
        "strict mode changed results"
    );

    // And the strict-mode compiler still hands out a plan for this shape.
    assert!(
        model.compile_fresh_plan(1).is_some(),
        "strict mode refused a healthy plan"
    );
}
