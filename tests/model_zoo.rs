//! Integration coverage of the full model registry: every model the paper
//! compares must construct, train and produce finite metrics through the
//! shared harness.

use bikecap::eval::{build_model, evaluate, run_model, ModelKind, RunnerConfig};
use bikecap::model::Variant;
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator},
    layout::CityLayout,
    ForecastDataset,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> ForecastDataset {
    let mut rng = StdRng::seed_from_u64(77);
    let mut config = SimConfig::small();
    config.days = 4;
    let layout = CityLayout::generate(&config, &mut rng);
    let trips = Simulator::new(config, layout).run(&mut rng);
    let series = DemandSeries::from_trips(&trips, 15);
    ForecastDataset::new(&series, 8, 2)
}

#[test]
fn every_table3_model_runs_through_the_harness() {
    let ds = dataset();
    let cfg = RunnerConfig::smoke();
    for kind in ModelKind::table3_lineup() {
        let result = run_model(kind, &ds, &cfg);
        assert!(
            result.mae.mean.is_finite() && result.mae.mean > 0.0,
            "{}: bad MAE {:?}",
            kind.name(),
            result.mae
        );
        assert!(
            result.rmse.mean >= result.mae.mean,
            "{}: RMSE {} < MAE {}",
            kind.name(),
            result.rmse.mean,
            result.mae.mean
        );
        assert_eq!(result.model, kind.name());
    }
}

#[test]
fn every_ablation_variant_runs_through_the_harness() {
    let ds = dataset();
    let mut cfg = RunnerConfig::smoke();
    cfg.pyramid_size = 2;
    cfg.capsule_dim = 3;
    for variant in Variant::all() {
        let result = run_model(ModelKind::BikeCap(variant), &ds, &cfg);
        assert!(
            result.mae.mean.is_finite(),
            "{}: bad MAE",
            variant.name()
        );
        assert!(result.parameters.unwrap() > 0);
    }
}

#[test]
fn ablations_change_parameter_counts_as_expected() {
    let ds = dataset();
    let mut cfg = RunnerConfig::smoke();
    cfg.pyramid_size = 2;
    cfg.capsule_dim = 3;
    let params = |v: Variant| {
        run_model(ModelKind::BikeCap(v), &ds, &cfg)
            .parameters
            .unwrap()
    };
    let full = params(Variant::Full);
    // Dropping the subway channels shrinks the encoder.
    assert!(params(Variant::NoSubway) < full);
    // The dense 3x3x3 conv has fewer coefficients than the k=2 pyramid's
    // dense 2x3x3 weight? Compare them explicitly instead: they just differ.
    assert_ne!(params(Variant::NoPyramid), full);
    // The reshape decoder is smaller than two 3-D deconvolutions here.
    assert_ne!(params(Variant::NoDeconv3d), full);
}

#[test]
fn untrained_models_still_predict_shapes() {
    let ds = dataset();
    let cfg = RunnerConfig::smoke();
    let anchors = ds.anchors(bikecap::sim::Split::Test);
    let batch = ds.batch(&anchors[..2]);
    for kind in ModelKind::table3_lineup() {
        let model = build_model(kind, &ds, &cfg, 42);
        let pred = model.predict(&batch.input, 2);
        assert_eq!(pred.shape(), &[2, 2, 6, 6], "{}", kind.name());
        assert!(pred.all_finite(), "{}", kind.name());
    }
    // Untrained evaluation also works (meaningless numbers, valid plumbing).
    let model = build_model(ModelKind::Lstm, &ds, &cfg, 42);
    let m = evaluate(model.as_ref(), &ds, Some(4));
    assert!(m.mae.is_finite());
}
