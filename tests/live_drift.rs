//! Live-city adaptation e2e: regime shift → drift detection → fine-tune →
//! shadow evaluation → hot-swap, and the rollback path when fine-tuning is
//! sabotaged — all seeded and bitwise-reproducible.
//!
//! Requires the `faultline` feature (`cargo test --features faultline
//! --test live_drift`); without it the failpoints are compiled out and this
//! file is empty. The sweep seed comes from `BIKECAP_CHAOS_SEED` (default
//! 0) so CI can sweep seeds without recompiling.
//!
//! Fault plans and the process-global obs sink are shared state, so every
//! test serialises on one mutex, exactly like `tests/chaos.rs`.
#![cfg(feature = "faultline")]

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use bikecap::faults::{self, FaultPlan};
use bikecap::live::{AdaptOutcome, DriftState, LiveConfig, LiveLoop, LiveReport, RecordStream};
use bikecap::model::{BikeCap, BikeCapConfig, TrainOptions};
use bikecap::serve::http::client_request;
use bikecap::serve::{ModelEntry, ModelRegistry, ServeConfig, Server, DEFAULT_MODEL};
use bikecap::sim::scenario::{Scenario, WeatherShock};
use bikecap::sim::{
    aggregate::DemandSeries,
    generate::{SimConfig, Simulator, TripData},
    layout::CityLayout,
    ForecastDataset, Normalizer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HISTORY: usize = 6;
const HORIZON: usize = 2;
/// The live stream's weather shock starts at day 2 (minute 2880): with
/// 15-minute slots that is slot 192. Day 0 feeds the detector's one-day
/// baseline; day 1 is ordinary traffic, so drift confirmed before this
/// slot would mean the detector fired on day-to-day noise.
const SHOCK_START_MIN: f64 = 2880.0;
const SHOCK_SLOT: usize = (SHOCK_START_MIN as usize) / 15;

/// The sweep seed for this process's fault schedules.
fn chaos_seed() -> u64 {
    std::env::var("BIKECAP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Held for a test's whole body: serialises on the process-global fault
/// plan and obs sink (the live loop installs its routing probe as the
/// process sink), and replays the obs ring to stderr if the test panics.
struct ChaosGuard {
    _dump: bikecap::obs::PanicDump,
    _lock: MutexGuard<'static, ()>,
}

fn chaos_lock() -> ChaosGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    faults::clear();
    bikecap::obs::clear();
    let ring = Arc::new(bikecap::obs::MemorySink::new(4096));
    bikecap::obs::install(ring.clone());
    ChaosGuard {
        _dump: bikecap::obs::PanicDump::new(format!("live-drift seed {}", chaos_seed()), ring),
        _lock: guard,
    }
}

/// Installs the fault schedule for this process's sweep seed.
fn arm(spec: &str) {
    faults::install(FaultPlan::parse(spec, chaos_seed()).expect("valid fault spec"));
}

/// Shared scene: one baseline city, one trained incumbent checkpoint, and
/// one weather-shocked live stream. Built once — every test replays the
/// same records against a fresh copy of the same incumbent, which is what
/// makes the run fingerprints comparable across tests and thread counts.
struct Scene {
    ckpt: PathBuf,
    model_config: BikeCapConfig,
    normalizer: Normalizer,
    live_trips: TripData,
    total_minutes: f64,
}

fn scene() -> &'static Scene {
    static SCENE: OnceLock<Scene> = OnceLock::new();
    SCENE.get_or_init(|| {
        // Baseline: a quiet small city; the incumbent learns its rhythm.
        let mut rng = StdRng::seed_from_u64(7);
        let config = SimConfig::small();
        let layout = CityLayout::generate(&config, &mut rng);
        let trips = Simulator::new(config.clone(), layout.clone()).run(&mut rng);
        let series = DemandSeries::from_trips(&trips, 15);
        let dataset = ForecastDataset::new(&series, HISTORY, HORIZON);

        let model_config = BikeCapConfig::new(series.height, series.width)
            .history(HISTORY)
            .horizon(HORIZON)
            .pyramid_size(2)
            .capsule_dim(4)
            .out_capsule_dim(4)
            .decoder_channels(4);
        let mut model = BikeCap::seeded(model_config.clone(), 7);
        let mut train_rng = StdRng::seed_from_u64(8);
        model.fit(&dataset, &TrainOptions::smoke(), &mut train_rng);

        let dir = std::env::temp_dir().join(format!(
            "bikecap-live-drift-{}-{}",
            std::process::id(),
            chaos_seed()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("incumbent.ckpt");
        model.save_checkpoint(&ckpt).unwrap();

        // Live stream: the SAME city and layout, fresh days, third day
        // under a 3x weather-driven demand surge. Days 0–1 differ from the
        // baseline only by trip-level noise, so any drift confirmed before
        // slot `SHOCK_SLOT` is a detector false positive.
        let mut live_sim = config;
        live_sim.days = 3;
        live_sim.scenario = Scenario {
            weather_shock: Some(WeatherShock {
                start_min: SHOCK_START_MIN,
                end_min: f64::from(live_sim.total_minutes()),
                demand_factor: 3.0,
            }),
            ..Scenario::none()
        };
        let total_minutes = f64::from(live_sim.total_minutes());
        let mut live_rng = StdRng::seed_from_u64(11);
        let live_trips = Simulator::new(live_sim, layout).run(&mut live_rng);

        Scene {
            ckpt,
            model_config,
            normalizer: dataset.normalizer().clone(),
            live_trips,
            total_minutes,
        }
    })
}

/// Replays the scene's live stream against a fresh copy of the incumbent
/// on `threads` worker threads. Returns the run report and the serving
/// entry (to inspect its swap count afterwards).
fn run_live(tag: &str, threads: usize) -> (LiveReport, Arc<ModelEntry>, Arc<ModelRegistry>) {
    let scene = scene();
    bikecap::rt::set_threads(threads);

    let mut model = BikeCap::build_seeded(scene.model_config.clone(), 0).unwrap();
    model.load_checkpoint(&scene.ckpt).unwrap();
    let registry = Arc::new(ModelRegistry::new());
    let entry = registry.insert(DEFAULT_MODEL, model);

    let work_dir = std::env::temp_dir().join(format!(
        "bikecap-live-drift-run-{tag}-{threads}-{}-{}",
        std::process::id(),
        chaos_seed()
    ));
    std::fs::remove_dir_all(&work_dir).ok();
    let config = LiveConfig::new(HISTORY, HORIZON, scene.normalizer.clone(), work_dir);
    let mut live = LiveLoop::new(Arc::clone(&entry), config, None, None).unwrap();
    let report = live
        .run(RecordStream::new(&scene.live_trips), scene.total_minutes)
        .unwrap();
    bikecap::rt::set_threads(0);
    (report, entry, registry)
}

/// Slots at which the detector confirmed drift.
fn drifted_slots(report: &LiveReport) -> Vec<usize> {
    report
        .transitions
        .iter()
        .filter(|(_, s)| *s == DriftState::Drifted)
        .map(|(slot, _)| *slot)
        .collect()
}

/// The weather shock — and only the weather shock — drives the loop all
/// the way through detect → fine-tune → shadow-eval → hot-swap, and the
/// new model version is visible on the serving surface via `/healthz`.
#[test]
fn weather_shock_drives_hot_swap_visible_in_healthz() {
    let _guard = chaos_lock();
    let (report, entry, registry) = run_live("swap", 1);
    bikecap::obs::clear();

    let drifted = drifted_slots(&report);
    assert!(
        !drifted.is_empty(),
        "the 3x weather shock must confirm drift; transitions: {:?}",
        report.transitions
    );
    assert!(
        drifted.iter().all(|&slot| slot >= SHOCK_SLOT),
        "drift confirmed before the shock at slot {SHOCK_SLOT} is a false \
         positive on day-to-day noise: {drifted:?}"
    );
    assert!(
        report.swaps >= 1,
        "a model fine-tuned on shocked data must win the shadow eval and be \
         swapped in; outcomes: {:?}",
        report.outcomes
    );
    assert_eq!(
        entry.swap_count(),
        report.swaps,
        "every reported swap must have gone through the serving entry"
    );

    // The swap must be observable exactly where an operator would look:
    // the `versions` map on `/healthz`.
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap();
    let (status, body) = client_request(
        server.local_addr(),
        "GET",
        "/healthz",
        None,
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(status, 200);
    let expected = format!("\"{DEFAULT_MODEL}\":{}", entry.swap_count());
    assert!(
        body.contains("\"versions\"") && body.contains(&expected),
        "/healthz must report the swapped model version ({expected}): {body}"
    );
}

/// The whole loop — ingestion order, window counts, monitor scores, drift
/// transitions, fine-tune, shadow eval, swap decisions — is bitwise
/// identical on 1, 2, and 4 worker threads, even with a seeded ingest-drop
/// fault schedule running. One fingerprint per seed, not per machine.
#[test]
fn live_fingerprint_is_identical_across_thread_counts() {
    let _guard = chaos_lock();
    let mut runs = Vec::new();
    for threads in [1usize, 2, 4] {
        // Re-arm the same seeded schedule before each replay so every run
        // sees the identical drop pattern.
        arm("live.ingest.record=p:0.01");
        let (report, _, _) = run_live("threads", threads);
        faults::clear();
        runs.push((threads, report));
    }
    bikecap::obs::clear();

    let Some(((_, first), rest)) = runs.split_first() else {
        unreachable!("three runs requested");
    };
    assert!(
        first.records > 0 && first.slots > 0,
        "the replay must ingest records and seal slots"
    );
    for (threads, report) in rest {
        assert_eq!(
            report.fingerprint(),
            first.fingerprint(),
            "live run diverged on {threads} threads: \
             {report:?} vs baseline {first:?}"
        );
    }
}

/// Sabotaged fine-tuning (every epoch loss poisoned to NaN through the
/// `train.epoch.loss` failpoint) must never reach the serving slot: the
/// adaptation rolls back, the incumbent keeps serving at version 0, and
/// the loop keeps running afterwards.
#[test]
fn divergent_finetune_rolls_back_and_incumbent_keeps_serving() {
    let _guard = chaos_lock();
    arm("train.epoch.loss=always");
    let (report, entry, registry) = run_live("rollback", 1);
    faults::clear();
    bikecap::obs::clear();

    assert!(
        !drifted_slots(&report).is_empty(),
        "the shock must still confirm drift; transitions: {:?}",
        report.transitions
    );
    assert_eq!(
        report.swaps, 0,
        "a diverging candidate must never be swapped in; outcomes: {:?}",
        report.outcomes
    );
    assert!(
        report.rollbacks >= 1,
        "divergence must be recorded as a rollback; outcomes: {:?}",
        report.outcomes
    );
    assert!(
        report.outcomes.iter().any(|o| matches!(
            o,
            AdaptOutcome::RolledBack { reason, .. } if reason.contains("diverged")
        )),
        "at least one rollback must carry the divergence reason: {:?}",
        report.outcomes
    );
    assert_eq!(
        entry.swap_count(),
        0,
        "the incumbent must still be serving, untouched"
    );

    // The serving surface agrees: version 0, model still answering.
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap();
    let (status, body) = client_request(
        server.local_addr(),
        "GET",
        "/healthz",
        None,
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(status, 200);
    let expected = format!("\"{DEFAULT_MODEL}\":0");
    assert!(
        body.contains(&expected),
        "/healthz must still report version 0 after rollback: {body}"
    );
}

/// The rollback path is as reproducible as the happy path: the same
/// sabotage schedule yields the same fingerprint on 1 and 4 threads.
#[test]
fn rollback_fingerprint_is_identical_across_thread_counts() {
    let _guard = chaos_lock();
    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        arm("train.epoch.loss=always");
        let (report, entry, _) = run_live("rollback-threads", threads);
        faults::clear();
        assert_eq!(entry.swap_count(), 0);
        runs.push(report);
    }
    bikecap::obs::clear();

    assert_eq!(
        runs[0].fingerprint(),
        runs[1].fingerprint(),
        "rollback run diverged across thread counts: {:?} vs {:?}",
        runs[1],
        runs[0]
    );
}
