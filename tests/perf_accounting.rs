//! Roofline work-model accounting regression tests.
//!
//! `bikecap profile` joins `perf.flops` / `perf.bytes` value events to their
//! enclosing kernel spans to print per-layer GFLOP/s, GB/s, arithmetic
//! intensity and a memory-/compute-bound verdict (DESIGN.md Appendix I).
//! These tests pin that both execution paths stamp the model:
//!
//! * the eager tape walk, per layer (`nn.*` / `core.*` spans), and
//! * the compiled executor, per step from baked geometry (`ir.step.*`),
//!
//! and that the two agree on total conv work — the compiled plan must not
//! drift from the eager accounting for the same model and input.

use std::sync::Arc;

use bikecap::model::{BikeCap, BikeCapConfig, ExecMode};
use bikecap::obs::{self, Kind, MemorySink, Roofline};
use bikecap::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn traced_predict(mode: ExecMode) -> Vec<obs::Event> {
    let sink = Arc::new(MemorySink::new(1 << 18));
    obs::install(sink.clone());
    let mut model = BikeCap::seeded(BikeCapConfig::new(8, 8).history(8).horizon(4), 42);
    model.set_exec_mode(mode);
    let mut rng = StdRng::seed_from_u64(7);
    let window = Tensor::rand_uniform(&[2, 4, 8, 8, 8], 0.0, 1.0, &mut rng);
    let _ = model.predict(&window);
    obs::clear();
    sink.snapshot()
}

/// Sum of a `perf.*` counter attributed to spans whose name passes `keep`.
fn attributed(events: &[obs::Event], counter: &str, keep: impl Fn(&str) -> bool) -> f64 {
    let mut stacks: std::collections::HashMap<u64, Vec<String>> = std::collections::HashMap::new();
    let mut total = 0.0;
    for ev in events {
        let stack = stacks.entry(ev.tid).or_default();
        match ev.kind {
            Kind::Begin => stack.push(ev.name.to_string()),
            Kind::End => {
                stack.pop();
            }
            Kind::Value => {
                if ev.name == counter && stack.last().map(|s| keep(s)).unwrap_or(false) {
                    total += ev.value;
                }
            }
        }
    }
    total
}

#[test]
fn compiled_steps_stamp_the_work_model() {
    let events = traced_predict(ExecMode::Compiled);
    let rows = obs::roofline_table(&events, &Roofline::default());
    // The BikeCAP plan has no standalone Matmul step — its matmuls are fused
    // inside Conv/ConvT — so the conv family plus routing math is the full set.
    for want in ["ir.step.conv", "ir.step.convt", "ir.step.softmax", "ir.step.squash"] {
        let row = rows
            .iter()
            .find(|r| r.name == want)
            .unwrap_or_else(|| panic!("no roofline row for {want}"));
        assert!(row.gflop > 0.0, "{want}: zero flops");
        assert!(row.gbyte > 0.0, "{want}: zero bytes");
        assert!(row.intensity > 0.0, "{want}: zero intensity");
    }
}

#[test]
fn eager_and_compiled_agree_on_conv_work() {
    let eager = traced_predict(ExecMode::Eager);
    let compiled = traced_predict(ExecMode::Compiled);

    // Eager stamps conv work inside nn.conv3d/nn.pyramid/nn.deconv3d and the
    // routing transform span; compiled stamps it on ir.step.conv / ir.step.convt.
    // The decompositions differ (the pyramid layer models its dense masked
    // kernel on top of the inner conv, and the routing transform is modelled
    // as a conv on the eager side), so the totals agree to a small factor
    // rather than bitwise — the ratio window below catches a path that stops
    // stamping or double-counts wholesale.
    let eager_flops = attributed(&eager, "perf.flops", |_| true);
    let compiled_flops = attributed(&compiled, "perf.flops", |_| true);
    assert!(eager_flops > 0.0, "eager path stamped no flops");
    assert!(compiled_flops > 0.0, "compiled path stamped no flops");
    // Eager additionally stamps softmax/squash inside routing iterations the
    // compiled plan fuses identically, so conv-family work is the equality
    // we can pin tightly.
    let eager_conv = attributed(&eager, "perf.flops", |s| {
        s.starts_with("nn.conv3d") || s.starts_with("nn.pyramid") || s.starts_with("nn.deconv3d")
    });
    let compiled_conv = attributed(&compiled, "perf.flops", |s| {
        s == "ir.step.conv" || s == "ir.step.convt"
    });
    assert!(eager_conv > 0.0 && compiled_conv > 0.0, "conv work missing");
    let ratio = eager_conv / compiled_conv;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "conv work models diverged: eager {eager_conv} vs compiled {compiled_conv}"
    );
}
