//! Offline compile/test stub for `rand` 0.8 with the API surface the
//! bikecap workspace uses. Functional (xoshiro256++-based) but NOT the real
//! rand crate; used only because the sandbox has no network access.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, like real rand.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (stand-in for rand's ChaCha12-based StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                s = [0xdead_beef, 0xcafe_f00d, 0x1234_5678, 0x9abc_def0];
            }
            let mut rng = StdRng { s };
            for _ in 0..8 {
                let _ = rng.next_u64();
            }
            rng
        }
    }
}

pub mod distributions {
    pub mod uniform {
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types samplable from a uniform range (mirrors rand's trait so type
        /// inference behaves identically: one blanket impl per range kind).
        pub trait SampleUniform: Sized {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
        }

        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "empty range");
                T::sample_between(self.start, self.end, false, rng)
            }
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                T::sample_between(lo, hi, true, rng)
            }
        }

        fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        macro_rules! float_uniform {
            ($t:ty) => {
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                        lo + ((hi - lo) as f64 * unit_f64(rng)) as $t
                    }
                }
            };
        }
        float_uniform!(f32);
        float_uniform!(f64);

        macro_rules! int_uniform {
            ($t:ty) => {
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                        let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                        let v = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            };
        }
        int_uniform!(u8);
        int_uniform!(u16);
        int_uniform!(u32);
        int_uniform!(u64);
        int_uniform!(usize);
        int_uniform!(i8);
        int_uniform!(i16);
        int_uniform!(i32);
        int_uniform!(i64);
        int_uniform!(isize);
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = r.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
            let u: usize = r.gen_range(0..7usize);
            assert!(u < 7);
        }
    }
}
