//! Offline vendored stand-in for `criterion` 0.5.
//!
//! The build container has no network access, so this crate implements
//! only the API the bikecap bench suites use: `Criterion::default()`,
//! `sample_size`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros (both the simple and the
//! `name = ..; config = ..; targets = ..` forms). Each benchmark runs a
//! short warm-up, then `sample_size` timed samples, and prints the mean
//! and minimum time per iteration. There are no plots, no statistics
//! beyond mean/min, and no baseline persistence.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times one benchmark body; handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `body` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Calibrate: aim for samples of at least ~5 ms each so the clock
        // resolution does not dominate, capped to keep fast suites fast.
        let probe = Instant::now();
        black_box(body());
        let one = probe.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / one.as_nanos()).clamp(1, 10_000) as u64;

        let n_samples = self.samples.capacity().max(1);
        for _ in 0..n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(body());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 1,
        };
        body(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{name:<44} (no samples: Bencher::iter never called)");
            return self;
        }
        let per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / bencher.iters_per_sample as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{name:<44} mean {:>12}  min {:>12}  ({} samples x {} iters)",
            fmt_ns(mean),
            fmt_ns(min),
            per_iter.len(),
            bencher.iters_per_sample,
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn group_runs_and_samples() {
        group();
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher { samples: Vec::with_capacity(4), iters_per_sample: 1 };
        b.iter(|| black_box(3u32).wrapping_mul(7));
        assert_eq!(b.samples.len(), 4);
        assert!(b.iters_per_sample >= 1);
    }
}
