//! Offline vendored stand-in for `proptest` 1.x.
//!
//! The build container has no network access, so this crate re-implements
//! exactly the API subset the bikecap workspace uses: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `collection::vec`, `bool::ANY`, and the `proptest!`/`prop_assert!`/
//! `prop_assert_eq!` macros with `#![proptest_config]` support.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - Sampling is deterministic per test (seeded from the test's module
//!   path + name), so failures always reproduce; there is no persistence
//!   file.
//! - No shrinking: a failing case reports its index and message as-is.
//! - The default case count is 64 (real proptest: 256) to keep the
//!   numeric suites fast on one CPU.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream used for all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an arbitrary tag (FNV-1a of the bytes), so
    /// every test gets an independent but reproducible sequence.
    pub fn from_name(tag: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in tag.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type — the subset of proptest's
/// `Strategy` this workspace needs (no shrink tree).
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produces a value, then samples the strategy built from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                self.start() + rng.below(span) as $t
            }
        }
    )+};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11);

/// `proptest::collection` — strategies over containers.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length bounds for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_excl: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { min: r.start, max_excl: r.end }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// See [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `proptest::strategy` — re-exports for path compatibility.
pub mod strategy {
    pub use super::{FlatMap, Just, Map, Strategy};
}

/// `proptest::test_runner` — runner configuration.
pub mod test_runner {
    pub use super::TestRng;

    /// Runner knobs; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// block runs its body for every sampled case. An optional leading
/// `#![proptest_config(expr)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let ($($pat,)+) =
                        ($($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+);
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!("proptest case {} of {}: {}", __case, __config.cases, __msg);
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing proptest case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing proptest case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Fails the enclosing proptest case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = super::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let u = (3usize..7).sample(&mut rng);
            assert!((3..7).contains(&u));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = super::TestRng::from_name("vec");
        for _ in 0..200 {
            let v = super::collection::vec(0usize..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = super::collection::vec(0usize..10, 4usize).sample(&mut rng);
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = super::TestRng::from_name("same");
        let mut b = super::TestRng::from_name("same");
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(25))]

        #[test]
        fn macro_binds_tuples((a, b) in (0usize..5, 0usize..5), s in -1.0f32..1.0) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!((-1.0..1.0).contains(&s), "s out of range: {s}");
            prop_assert_eq!(a + b, b + a);
        }
    }
}
