#!/bin/bash
# Wait for table3 to finish, then run the remaining experiment binaries,
# cheapest and most load-bearing first.
while kill -0 8529 2>/dev/null; do sleep 10; done
cd /root/repo
./target/release/fig1_leadlag --quick --out results/fig1.md > /dev/null 2>&1
./target/release/tables12_records --quick --out results/tables12.md > /dev/null 2>&1
./target/release/fig2_accumulation --quick --out results/fig2.md > results/fig2.stdout.log 2> results/fig2.progress.log
touch results/FIG2_DONE
./target/release/table4_pyramid --quick --out results/table4.md > results/table4.stdout.log 2> results/table4.progress.log
touch results/TABLE4_DONE
./target/release/table5_capsdim --quick --out results/table5.md > results/table5.stdout.log 2> results/table5.progress.log
touch results/TABLE5_DONE
./target/release/fig7_ablation --quick --out results/fig7.md > results/fig7.stdout.log 2> results/fig7.progress.log
touch results/FIG7_DONE
./target/release/ablation_routing --quick --out results/ablation_routing.md > results/ablation_routing.stdout.log 2> results/ablation_routing.progress.log
echo "ALL_EXPERIMENTS_DONE" > results/DONE
